#ifndef EMIGRE_EVAL_METHODS_H_
#define EMIGRE_EVAL_METHODS_H_

#include <string>
#include <vector>

#include "explain/explanation.h"

namespace emigre::eval {

/// \brief One evaluated configuration: a (mode, heuristic) pair with the
/// paper's display name.
struct MethodSpec {
  std::string name;
  explain::Mode mode = explain::Mode::kRemove;
  explain::Heuristic heuristic = explain::Heuristic::kIncremental;
};

/// The eight methods of the paper's evaluation (§6.2), in its display
/// order: add_Incremental, add_Powerset, add_ex, remove_Incremental,
/// remove_Powerset, remove_ex, remove_ex_direct, remove_brute.
std::vector<MethodSpec> PaperMethods();

/// Only the Remove-mode methods (the Fig. 5 comparison set).
std::vector<MethodSpec> RemoveMethods();

/// Only the Add-mode methods.
std::vector<MethodSpec> AddMethods();

/// Finds a method by name; returns nullptr when absent.
const MethodSpec* FindMethod(const std::vector<MethodSpec>& methods,
                             const std::string& name);

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_METHODS_H_
