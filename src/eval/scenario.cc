#include "eval/scenario.h"

#include "recsys/recommender.h"
#include "util/string_util.h"

namespace emigre::eval {

Result<std::vector<Scenario>> GenerateScenarios(
    const graph::HinGraph& g, const std::vector<graph::NodeId>& users,
    const explain::EmigreOptions& opts, size_t top_k, size_t max_per_user) {
  if (top_k < 2) {
    return Status::InvalidArgument("top_k must be at least 2");
  }
  std::vector<Scenario> scenarios;
  for (graph::NodeId user : users) {
    if (!g.IsValidNode(user)) {
      return Status::InvalidArgument(
          StrFormat("invalid evaluation user %u", user));
    }
    recsys::RecommendationList ranking =
        recsys::RankItems(g, user, opts.rec).TopN(top_k);
    if (ranking.size() < 2) continue;  // nothing beyond the top-1
    size_t emitted = 0;
    for (size_t rank = 1; rank < ranking.size(); ++rank) {
      if (max_per_user > 0 && emitted >= max_per_user) break;
      scenarios.push_back(Scenario{user, ranking.at(rank).item, rank,
                                   ranking.Top()});
      ++emitted;
    }
  }
  return scenarios;
}

}  // namespace emigre::eval
