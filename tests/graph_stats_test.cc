#include "graph/stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace emigre::graph {
namespace {

TEST(DegreeStatsTest, CountsPerType) {
  test::BookGraph bg = test::MakeBookGraph();
  std::vector<TypeDegreeStats> stats = ComputeDegreeStats(bg.g);
  ASSERT_EQ(stats.size(), 3u);  // user, item, category
  EXPECT_EQ(stats[bg.user_type].type_name, "user");
  EXPECT_EQ(stats[bg.user_type].num_nodes, 3u);
  EXPECT_EQ(stats[bg.item_type].num_nodes, 6u);
  EXPECT_EQ(stats[bg.category_type].num_nodes, 3u);
}

TEST(DegreeStatsTest, MeanMatchesHandCount) {
  // Two users, one item: u0 -> i (directed), u1 <-> i (bidirectional).
  HinGraph g;
  NodeTypeId user = g.RegisterNodeType("user");
  NodeTypeId item = g.RegisterNodeType("item");
  EdgeTypeId rated = g.RegisterEdgeType("rated");
  NodeId u0 = g.AddNode(user);
  NodeId u1 = g.AddNode(user);
  NodeId i = g.AddNode(item);
  ASSERT_TRUE(g.AddEdge(u0, i, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(u1, i, rated).ok());

  std::vector<TypeDegreeStats> stats = ComputeDegreeStats(g);
  // u0: out 1, in 0 -> degree 1; u1: out 1, in 1 -> degree 2.
  EXPECT_DOUBLE_EQ(stats[user].mean_degree, 1.5);
  EXPECT_DOUBLE_EQ(stats[user].degree_stddev, 0.5);
  // item: in 2, out 1 -> degree 3.
  EXPECT_DOUBLE_EQ(stats[item].mean_degree, 3.0);
  EXPECT_DOUBLE_EQ(stats[item].degree_stddev, 0.0);
}

TEST(DegreeStatsTest, EmptyTypeHasZeroes) {
  HinGraph g;
  g.RegisterNodeType("user");
  g.RegisterNodeType("ghost");
  g.AddNode("user");
  std::vector<TypeDegreeStats> stats = ComputeDegreeStats(g);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[1].num_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats[1].mean_degree, 0.0);
}

TEST(DegreeStatsTest, FormatIncludesAllTypes) {
  test::BookGraph bg = test::MakeBookGraph();
  std::string s = FormatDegreeStats(ComputeDegreeStats(bg.g));
  EXPECT_NE(s.find("user"), std::string::npos);
  EXPECT_NE(s.find("item"), std::string::npos);
  EXPECT_NE(s.find("category"), std::string::npos);
  EXPECT_NE(s.find("Average Degree"), std::string::npos);
}

}  // namespace
}  // namespace emigre::graph
