#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "ppr/forward_push.h"
#include "ppr/power_iteration.h"
#include "ppr/reverse_push.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::ppr {
namespace {

using graph::HinGraph;
using graph::NodeId;

/// Full PPR matrix by power iteration: row s = PPR(s, ·).
std::vector<std::vector<double>> FullPprMatrix(const HinGraph& g,
                                               const PprOptions& opts) {
  std::vector<std::vector<double>> m(g.NumNodes());
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    m[s] = PowerIterationPpr(g, s, opts);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Parameterized sweep: (seed, num_users, num_items, alpha, epsilon).
// ---------------------------------------------------------------------------
using PushParams = std::tuple<uint64_t, size_t, size_t, double, double>;

class PushPropertyTest : public ::testing::TestWithParam<PushParams> {
 protected:
  void SetUp() override {
    auto [seed, users, items, alpha, epsilon] = GetParam();
    Rng rng(seed);
    rh_ = test::MakeRandomHin(rng, users, items, 3, 6);
    opts_.alpha = alpha;
    opts_.epsilon = epsilon;
    opts_.power_tolerance = 1e-14;
    ppr_ = FullPprMatrix(rh_.g, opts_);
  }

  test::RandomHin rh_;
  PprOptions opts_;
  std::vector<std::vector<double>> ppr_;
};

TEST_P(PushPropertyTest, ForwardPushInvariantEq3Holds) {
  // PPR(s,t) = P(s,t) + Σ_x R(s,x)·PPR(x,t) for every t (paper Eq. 3).
  NodeId s = rh_.users[0];
  PushResult fp = ForwardPush(rh_.g, s, opts_);
  for (NodeId t = 0; t < rh_.g.NumNodes(); ++t) {
    double reconstructed = fp.estimate[t];
    for (NodeId x = 0; x < rh_.g.NumNodes(); ++x) {
      if (fp.residual[x] != 0.0) reconstructed += fp.residual[x] * ppr_[x][t];
    }
    EXPECT_NEAR(reconstructed, ppr_[s][t], 1e-7)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(PushPropertyTest, ForwardPushUnderestimatesWithinResidual) {
  NodeId s = rh_.users[0];
  PushResult fp = ForwardPush(rh_.g, s, opts_);
  double residual_mass = fp.ResidualMass();
  for (NodeId t = 0; t < rh_.g.NumNodes(); ++t) {
    EXPECT_LE(fp.estimate[t], ppr_[s][t] + 1e-9);
    EXPECT_GE(fp.estimate[t], ppr_[s][t] - residual_mass - 1e-9);
  }
}

TEST_P(PushPropertyTest, ReversePushInvariantEq4Holds) {
  // PPR(s,t) = P(s,t) + Σ_x PPR(s,x)·R(x,t) for every s (paper Eq. 4).
  NodeId t = rh_.items[0];
  PushResult rp = ReversePush(rh_.g, t, opts_);
  for (NodeId s = 0; s < rh_.g.NumNodes(); ++s) {
    double reconstructed = rp.estimate[s];
    for (NodeId x = 0; x < rh_.g.NumNodes(); ++x) {
      if (rp.residual[x] != 0.0) reconstructed += ppr_[s][x] * rp.residual[x];
    }
    EXPECT_NEAR(reconstructed, ppr_[s][t], 1e-7)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(PushPropertyTest, ReversePushApproximatesAllSources) {
  NodeId t = rh_.items[0];
  PushResult rp = ReversePush(rh_.g, t, opts_);
  // Residuals are below epsilon after convergence, and
  // Σ_x PPR(s,x)·R(x,t) ≤ max_x R(x,t) ≤ ε, so each source's absolute
  // error is bounded by ε.
  for (NodeId s = 0; s < rh_.g.NumNodes(); ++s) {
    EXPECT_NEAR(rp.estimate[s], ppr_[s][t], opts_.epsilon + 1e-9)
        << "s=" << s;
  }
}

TEST_P(PushPropertyTest, ForwardPushConvergesToExactWithTinyEpsilon) {
  PprOptions tight = opts_;
  tight.epsilon = 1e-12;
  NodeId s = rh_.users[0];
  PushResult fp = ForwardPush(rh_.g, s, tight);
  for (NodeId t = 0; t < rh_.g.NumNodes(); ++t) {
    EXPECT_NEAR(fp.estimate[t], ppr_[s][t], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PushPropertyTest,
    ::testing::Values(
        PushParams{1, 4, 12, 0.15, 1e-6}, PushParams{2, 4, 12, 0.15, 1e-4},
        PushParams{3, 6, 20, 0.15, 1e-6}, PushParams{4, 6, 20, 0.3, 1e-6},
        PushParams{5, 3, 8, 0.5, 1e-5}, PushParams{6, 8, 24, 0.15, 1e-7},
        PushParams{7, 5, 15, 0.85, 1e-6}, PushParams{8, 2, 6, 0.15, 1e-8}));

// ---------------------------------------------------------------------------
// Directed / dangling corner cases.
// ---------------------------------------------------------------------------

TEST(ReversePushTest, DanglingTargetAnalytic) {
  // u -> d, d dangling. PPR(u,d) = 1 - alpha; PPR(d,d) = 1.
  HinGraph g;
  NodeId u = g.AddNode("n");
  NodeId d = g.AddNode("n");
  ASSERT_TRUE(g.AddEdge(u, d, g.RegisterEdgeType("e")).ok());
  PprOptions opts;
  opts.alpha = 0.3;
  opts.epsilon = 1e-12;
  PushResult rp = ReversePush(g, d, opts);
  EXPECT_NEAR(rp.estimate[d], 1.0, 1e-6);
  EXPECT_NEAR(rp.estimate[u], 1.0 - opts.alpha, 1e-6);
}

TEST(ReversePushTest, UnreachableSourceScoresZero) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  NodeId c = g.AddNode("n");
  graph::EdgeTypeId t = g.RegisterEdgeType("e");
  ASSERT_TRUE(g.AddEdge(a, b, t).ok());
  // c is disconnected: PPR(c, b) must be 0.
  PushResult rp = ReversePush(g, b, PprOptions{});
  EXPECT_DOUBLE_EQ(rp.estimate[c], 0.0);
  EXPECT_GT(rp.estimate[a], 0.0);
}

TEST(ForwardPushTest, InvalidSourceReturnsZeros) {
  test::BookGraph bg = test::MakeBookGraph();
  PushResult fp = ForwardPush(bg.g, graph::kInvalidNode, PprOptions{});
  EXPECT_DOUBLE_EQ(fp.ResidualMass(), 0.0);
  for (double e : fp.estimate) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(ForwardPushTest, MassConservation) {
  // Converted estimate + remaining residual accounts for all walk mass:
  // sum(estimate) + sum(residual) <= 1 and >= 1 - tiny for small epsilon.
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-10;
  PushResult fp = ForwardPush(bg.g, bg.paul, opts);
  double total = 0.0;
  for (size_t i = 0; i < fp.estimate.size(); ++i) {
    total += fp.estimate[i];
  }
  EXPECT_NEAR(total + fp.ResidualMass(), 1.0, 1e-6);
}

TEST(ReversePushTest, MatchesPowerIterationOnBookGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-11;
  opts.power_tolerance = 1e-14;
  PushResult rp = ReversePush(bg.g, bg.harry_potter, opts);
  for (NodeId s = 0; s < bg.g.NumNodes(); ++s) {
    std::vector<double> p = PowerIterationPpr(bg.g, s, opts);
    EXPECT_NEAR(rp.estimate[s], p[bg.harry_potter], 1e-6) << "s=" << s;
  }
}

}  // namespace
}  // namespace emigre::ppr
