// Focused tests of the Exhaustive Comparison's candidate selection
// (Algorithm 5): per-target thresholds, the Add-mode column skip, margin
// slack on ties, and the direct variant's contract. Also checks the
// paper's adaptability claim by running EMiGRe on a RecWalk-rewritten
// graph.

#include "explain/exhaustive.h"

#include <gtest/gtest.h>

#include "explain/emigre.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "recsys/recwalk.h"
#include "test_util.h"

namespace emigre::explain {
namespace {

using graph::HinGraph;
using graph::NodeId;

/// A user whose only Add-mode candidate is the *current recommendation*
/// itself: adding (u, rec) removes rec from the candidate set, promoting
/// the runner-up. Only the Add-mode column skip makes this candidate
/// visible to the Exhaustive Comparison — its contribution against the rec
/// column is hugely negative.
struct ExclusionCase {
  HinGraph g;
  EmigreOptions opts;
  NodeId user, wni, rec;
};

ExclusionCase MakeExclusionCase() {
  ExclusionCase c;
  HinGraph& g = c.g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto rated = g.RegisterEdgeType("rated");
  c.user = g.AddNode(user_type, "u");
  NodeId mary = g.AddNode(user_type, "mary");
  NodeId dave = g.AddNode(user_type, "dave");
  c.wni = g.AddNode(item_type, "W");
  NodeId a = g.AddNode(item_type, "A");
  c.rec = g.AddNode(item_type, "T");

  auto rate = [&](NodeId u, NodeId i) {
    g.AddBidirectional(u, i, rated).CheckOK();
  };
  rate(mary, a);
  rate(mary, c.rec);
  rate(mary, c.wni);
  rate(dave, c.rec);  // T outranks W
  rate(c.user, a);

  c.opts.rec.item_type = item_type;
  c.opts.allowed_edge_types = {rated};
  c.opts.add_edge_type = rated;
  c.opts.rec.ppr.epsilon = 1e-9;
  return c;
}

TEST(ExhaustiveTest, AddModeSkipsColumnsOfAddedTargets) {
  ExclusionCase c = MakeExclusionCase();
  Emigre engine(c.g, c.opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(c.user);
  ASSERT_EQ(ranking.Top(), c.rec);
  ASSERT_EQ(ranking.at(1).item, c.wni);

  Result<Explanation> r = engine.Explain(WhyNotQuestion{c.user, c.wni},
                                         Mode::kAdd,
                                         Heuristic::kExhaustive);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found) << FailureReasonName(r->failure);
  // The explanation is exactly "interact with the current recommendation",
  // which excludes it from the candidate set.
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->edges[0].dst, c.rec);
  EXPECT_EQ(r->new_rec, c.wni);
}

TEST(ExhaustiveTest, RemoveModeRejectsCandidatesLosingToThirdItems) {
  // In the add-friendly fixture, removing (Paul, A) zeroes every score and
  // W wins the id tie-break — but the margin model cannot see tie-breaks;
  // the candidate survives only through the slack + TEST pipeline. Verify
  // the end-to-end behavior matches the exact tester's verdict either way.
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  Emigre engine(f.g, f.opts);
  Result<Explanation> r = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                         Mode::kRemove,
                                         Heuristic::kExhaustive);
  ASSERT_TRUE(r.ok());
  if (r->found) {
    ExplanationTester checker(f.g, f.user, f.wni, f.opts);
    EXPECT_TRUE(checker.Test(r->edges, Mode::kRemove));
  }
}

TEST(ExhaustiveTest, ZeroSlackPrunesTieCandidates) {
  // The remove-friendly case's winning candidate ties at margin 0 against
  // an unreachable target; with slack disabled it must be pruned.
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  EmigreOptions strict = f.opts;
  strict.exhaustive_margin_slack = -1.0;  // < 0 ⇒ strictly positive margins
  Emigre engine(f.g, strict);
  Result<Explanation> r = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                         Mode::kRemove,
                                         Heuristic::kExhaustive);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);

  Emigre relaxed(f.g, f.opts);
  Result<Explanation> r2 = relaxed.Explain(WhyNotQuestion{f.user, f.wni},
                                           Mode::kRemove,
                                           Heuristic::kExhaustive);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->found);
}

TEST(ExhaustiveTest, DirectStopsAtFirstCandidateUnverified) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Emigre engine(f.g, f.opts);
  Result<Explanation> direct = engine.Explain(
      WhyNotQuestion{f.user, f.wni}, Mode::kRemove,
      Heuristic::kExhaustiveDirect);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->found);
  EXPECT_FALSE(direct->verified);
  EXPECT_EQ(direct->tests_performed, 0u);
  // On this fixture the first candidate happens to be correct.
  ExplanationTester checker(f.g, f.user, f.wni, f.opts);
  EXPECT_TRUE(checker.Test(direct->edges, Mode::kRemove));
}

// ---------------------------------------------------------------------------
// Adaptability: EMiGRe over a RecWalk-rewritten recommender graph. The
// paper claims the framework is "not tied to the type of graph
// recommender" — since the RecWalk model is realized as a graph, the whole
// pipeline runs unchanged on it.
// ---------------------------------------------------------------------------

TEST(ExhaustiveTest, EmigreRunsOnRecWalkGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<HinGraph> rw = recsys::BuildRecWalkGraph(
      bg.g, bg.item_type, bg.user_type, recsys::RecWalkOptions{});
  ASSERT_TRUE(rw.ok());
  const HinGraph& g2 = rw.value();

  EmigreOptions opts;
  opts.rec.item_type = bg.item_type;
  opts.allowed_edge_types = {g2.FindEdgeType("rated")};
  opts.add_edge_type = g2.FindEdgeType("rated");
  opts.rec.ppr.epsilon = 1e-9;

  Emigre engine(g2, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(bg.paul);
  ASSERT_GE(ranking.size(), 2u);
  NodeId wni = ranking.at(1).item;

  for (Mode mode : {Mode::kRemove, Mode::kAdd}) {
    Result<Explanation> r = engine.Explain(WhyNotQuestion{bg.paul, wni},
                                           mode, Heuristic::kIncremental);
    ASSERT_TRUE(r.ok()) << r.status();
    if (r->found) {
      ExplanationTester checker(g2, bg.paul, wni, opts);
      EXPECT_TRUE(checker.Test(r->edges, mode));
    }
  }
}

}  // namespace
}  // namespace emigre::explain
