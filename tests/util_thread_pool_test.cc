#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace emigre {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutDeadlock) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  // With one worker the queue is strictly FIFO; the parallel tester's
  // serial fallback depends on this ordering.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, &m, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossManyWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasksWithoutWait) {
  // Tasks still queued when the destructor runs must complete, not be
  // dropped: workers drain the queue before honoring shutdown.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 24; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destructor must join after draining.
  }
  EXPECT_EQ(counter.load(), 24);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  ThreadPool::ParallelFor(hits.size(), 4, [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialPathMatches) {
  std::vector<int> values(64, 0);
  ThreadPool::ParallelFor(values.size(), 1, [&values](size_t i) {
    values[i] = static_cast<int>(i * i);
  });
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleItemRunsExactlyOnce) {
  std::atomic<int> calls{0};
  size_t seen = 99;
  ThreadPool::ParallelFor(1, 4, [&](size_t i) {
    calls.fetch_add(1);
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);
}

}  // namespace
}  // namespace emigre
