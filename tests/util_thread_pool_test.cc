#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace emigre {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutDeadlock) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  ThreadPool::ParallelFor(hits.size(), 4, [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialPathMatches) {
  std::vector<int> values(64, 0);
  ThreadPool::ParallelFor(values.size(), 1, [&values](size_t i) {
    values[i] = static_cast<int>(i * i);
  });
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace emigre
