#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace emigre {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutDeadlock) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_TRUE(pool.Wait().ok());
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  // With one worker the queue is strictly FIFO; the parallel tester's
  // serial fallback depends on this ordering.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, &m, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
  }
  EXPECT_TRUE(pool.Wait().ok());
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossManyWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_TRUE(pool.Wait().ok());
    EXPECT_EQ(counter.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasksWithoutWait) {
  // Tasks still queued when the destructor runs must complete, not be
  // dropped: workers drain the queue before honoring shutdown.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 24; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destructor must join after draining.
  }
  EXPECT_EQ(counter.load(), 24);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  EXPECT_TRUE(ThreadPool::ParallelFor(hits.size(), 4, [&hits](size_t i) {
    hits[i].fetch_add(1);
  }).ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialPathMatches) {
  std::vector<int> values(64, 0);
  EXPECT_TRUE(ThreadPool::ParallelFor(values.size(), 1, [&values](size_t i) {
    values[i] = static_cast<int>(i * i);
  }).ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  EXPECT_TRUE(
      ThreadPool::ParallelFor(0, 4, [&called](size_t) { called = true; })
          .ok());
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleItemRunsExactlyOnce) {
  std::atomic<int> calls{0};
  size_t seen = 99;
  EXPECT_TRUE(ThreadPool::ParallelFor(1, 4, [&](size_t i) {
    calls.fetch_add(1);
    seen = i;
  }).ok());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesFromWaitInsteadOfTerminating) {
  // Regression: a throwing task used to escape the worker thread and call
  // std::terminate. It must instead surface from Wait() as a Status.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  Status st = pool.Wait();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  // The non-throwing task of the same batch still ran.
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, StatusErrorTaskUnwrapsToItsStatus) {
  ThreadPool pool(2);
  pool.Submit([] { throw StatusError(Status::IOError("disk gone")); });
  Status st = pool.Wait();
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "disk gone");
}

TEST(ThreadPoolTest, WaitClearsTheErrorSoThePoolStaysUsable) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first"); });
  EXPECT_FALSE(pool.Wait().ok());
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, FirstOfSeveralErrorsWins) {
  // One worker serializes the tasks, so "first" is deterministic.
  ThreadPool pool(1);
  pool.Submit([] { throw StatusError(Status::Cancelled("one")); });
  pool.Submit([] { throw StatusError(Status::Cancelled("two")); });
  Status st = pool.Wait();
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(st.message(), "one");
}

TEST(ParallelForTest, PropagatesTaskErrorAtAnyThreadCount) {
  for (size_t threads : {1u, 4u}) {
    Status st = ThreadPool::ParallelFor(8, threads, [](size_t i) {
      if (i == 3) throw StatusError(Status::ResourceExhausted("budget"));
    });
    EXPECT_TRUE(st.IsResourceExhausted()) << "threads=" << threads;
    EXPECT_EQ(st.message(), "budget");
  }
}

}  // namespace
}  // namespace emigre
