#include "data/csv_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "data/synthetic_amazon.h"
#include "test_util.h"

namespace emigre::data {
namespace {

TEST(DatasetCsvTest, RoundTripPreservesEverything) {
  SyntheticAmazonOptions gen;
  gen.num_users = 15;
  gen.num_items = 80;
  gen.num_categories = 5;
  gen.min_actions_per_user = 4;
  gen.max_actions_per_user = 10;
  Result<Dataset> ds = GenerateSyntheticAmazon(gen);
  ASSERT_TRUE(ds.ok());

  std::string dir = test::MakeTempDir("dataset");
  ASSERT_TRUE(SaveDatasetCsv(ds.value(), dir).ok());
  Result<Dataset> loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->categories.size(), ds->categories.size());
  EXPECT_EQ(loaded->items.size(), ds->items.size());
  EXPECT_EQ(loaded->users.size(), ds->users.size());
  EXPECT_EQ(loaded->ratings.size(), ds->ratings.size());
  EXPECT_EQ(loaded->reviews.size(), ds->reviews.size());

  for (size_t i = 0; i < ds->items.size(); ++i) {
    EXPECT_EQ(loaded->items[i].name, ds->items[i].name);
    EXPECT_EQ(loaded->items[i].category, ds->items[i].category);
    EXPECT_NEAR(loaded->items[i].popularity, ds->items[i].popularity, 1e-9);
    EXPECT_NEAR(loaded->items[i].quality, ds->items[i].quality, 1e-9);
  }
  for (size_t i = 0; i < ds->users.size(); ++i) {
    EXPECT_EQ(loaded->users[i].preferences.size(),
              ds->users[i].preferences.size());
    EXPECT_NEAR(loaded->users[i].rating_bias, ds->users[i].rating_bias,
                1e-9);
  }
  for (size_t i = 0; i < ds->ratings.size(); ++i) {
    EXPECT_EQ(loaded->ratings[i].user, ds->ratings[i].user);
    EXPECT_EQ(loaded->ratings[i].item, ds->ratings[i].item);
    EXPECT_EQ(loaded->ratings[i].stars, ds->ratings[i].stars);
  }
  for (size_t i = 0; i < ds->reviews.size(); ++i) {
    ASSERT_EQ(loaded->reviews[i].embedding.size(),
              ds->reviews[i].embedding.size());
    for (size_t k = 0; k < ds->reviews[i].embedding.size(); ++k) {
      EXPECT_NEAR(loaded->reviews[i].embedding[k],
                  ds->reviews[i].embedding[k], 1e-5);
    }
  }
}

TEST(DatasetCsvTest, MissingDirectoryFails) {
  Dataset ds;
  EXPECT_TRUE(SaveDatasetCsv(ds, "/nonexistent/dir").IsIOError());
  EXPECT_TRUE(LoadDatasetCsv("/nonexistent/dir").status().IsIOError());
}

TEST(DatasetCsvTest, EmptyDatasetRoundTrips) {
  Dataset ds;
  std::string dir = test::MakeTempDir("dataset");
  ASSERT_TRUE(SaveDatasetCsv(ds, dir).ok());
  Result<Dataset> loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->users.empty());
  EXPECT_TRUE(loaded->ratings.empty());
}

// Regression: an empty (headerless) file used to load as an empty section,
// so a truncated categories.csv silently produced a dataset with no
// categories instead of an error.
TEST(DatasetCsvTest, HeaderlessFileFails) {
  Dataset ds;
  std::string dir = test::MakeTempDir("dataset");
  ASSERT_TRUE(SaveDatasetCsv(ds, dir).ok());
  { std::ofstream f(dir + "/categories.csv", std::ofstream::trunc); }
  Result<Dataset> loaded = LoadDatasetCsv(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

// Regression: a parse error mid-file used to end the read loop exactly like
// EOF, silently truncating the loaded dataset.
TEST(DatasetCsvTest, CorruptRowFailsInsteadOfTruncating) {
  Dataset ds;
  ds.ratings.push_back(Rating{0, 1, 5});
  ds.ratings.push_back(Rating{1, 2, 4});
  std::string dir = test::MakeTempDir("dataset");
  ASSERT_TRUE(SaveDatasetCsv(ds, dir).ok());
  {
    std::ofstream f(dir + "/ratings.csv", std::ofstream::trunc);
    f << "user,item,stars\n0,1,5\n1,\"2";  // cut off inside a quote
  }
  Result<Dataset> loaded = LoadDatasetCsv(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

TEST(DatasetCsvTest, RowCountHintIsWrittenAndOptional) {
  SyntheticAmazonOptions gen;
  gen.num_users = 8;
  gen.num_items = 30;
  gen.num_categories = 3;
  Result<Dataset> ds = GenerateSyntheticAmazon(gen);
  ASSERT_TRUE(ds.ok());
  std::string dir = test::MakeTempDir("dataset_hint");
  ASSERT_TRUE(SaveDatasetCsv(ds.value(), dir).ok());

  // The writer declares the row count ahead of the header so loaders can
  // reserve up front.
  std::ifstream in(dir + "/ratings.csv");
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first, "# rows=" + std::to_string(ds->ratings.size()));

  // External CSVs without the hint (or with a malformed one) load fine.
  {
    std::ofstream out(dir + "/categories.csv");
    out << "id,name\n0,books\n1,music\n";
  }
  {
    std::ofstream out(dir + "/ratings.csv", std::ios::trunc);
    out << "# rows=not-a-number\nuser,item,stars\n0,0,5\n";
  }
  {
    std::ofstream out(dir + "/reviews.csv", std::ios::trunc);
    out << "id,user,item,embedding\n";
  }
  Result<Dataset> loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->categories.size(), 2u);
  ASSERT_EQ(loaded->ratings.size(), 1u);
  EXPECT_EQ(loaded->ratings[0].stars, 5);
  EXPECT_TRUE(loaded->reviews.empty());
}

}  // namespace
}  // namespace emigre::data
