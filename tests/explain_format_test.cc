#include "explain/format.h"

#include <gtest/gtest.h>

#include "explain/emigre.h"
#include "explain/weighted.h"
#include "test_util.h"

namespace emigre::explain {
namespace {

using graph::EdgeRef;

TEST(FormatTest, RemoveSentenceMatchesPaperPhrasing) {
  test::BookGraph bg = test::MakeBookGraph();
  Explanation e;
  e.found = true;
  e.mode = Mode::kRemove;
  e.edges = {EdgeRef{bg.paul, bg.candide, bg.rated},
             EdgeRef{bg.paul, bg.c_lang, bg.rated}};
  e.new_rec = bg.harry_potter;
  EXPECT_EQ(FormatExplanationSentence(bg.g, e),
            "Had you not interacted with Candide and C, your top "
            "recommendation would be Harry Potter.");
}

TEST(FormatTest, AddSentenceSingleAction) {
  test::BookGraph bg = test::MakeBookGraph();
  Explanation e;
  e.found = true;
  e.mode = Mode::kAdd;
  e.edges = {EdgeRef{bg.paul, bg.lotr, bg.rated}};
  e.new_rec = bg.harry_potter;
  EXPECT_EQ(FormatExplanationSentence(bg.g, e),
            "Had you interacted with The Lord of the Rings, your top "
            "recommendation would be Harry Potter.");
}

TEST(FormatTest, ThreeActionsUseCommaAndConjunction) {
  test::BookGraph bg = test::MakeBookGraph();
  Explanation e;
  e.found = true;
  e.mode = Mode::kAdd;
  e.edges = {EdgeRef{bg.paul, bg.lotr, bg.rated},
             EdgeRef{bg.paul, bg.python, bg.rated},
             EdgeRef{bg.paul, bg.alchemist, bg.rated}};
  e.new_rec = bg.harry_potter;
  std::string s = FormatExplanationSentence(bg.g, e);
  EXPECT_NE(s.find("The Lord of the Rings, Python and The Alchemist"),
            std::string::npos);
}

TEST(FormatTest, FailureSentence) {
  test::BookGraph bg = test::MakeBookGraph();
  Explanation e;
  e.found = false;
  e.failure = FailureReason::kPopularItem;
  EXPECT_EQ(FormatExplanationSentence(bg.g, e),
            "No explanation: popular-item.");
}

TEST(FormatTest, CombinedSentenceListsBothDirections) {
  test::BookGraph bg = test::MakeBookGraph();
  CombinedExplanation e;
  e.found = true;
  e.added = {EdgeRef{bg.paul, bg.lotr, bg.rated}};
  e.removed = {EdgeRef{bg.paul, bg.c_lang, bg.rated}};
  e.new_rec = bg.harry_potter;
  EXPECT_EQ(FormatCombinedSentence(bg.g, e),
            "Had you interacted with The Lord of the Rings and not "
            "interacted with C, your top recommendation would be Harry "
            "Potter.");
}

TEST(FormatTest, WeightedSentenceShowsOldAndNewRatings) {
  test::BookGraph bg = test::MakeBookGraph();
  WeightedExplanation e;
  e.found = true;
  e.adjustments = {WeightAdjustment{
      EdgeRef{bg.paul, bg.c_lang, bg.rated}, 5.0, 0.2}};
  e.new_rec = bg.harry_potter;
  EXPECT_EQ(FormatWeightedSentence(bg.g, e),
            "Had you rated C 0.2 (instead of 5), your top recommendation "
            "would be Harry Potter.");
}

TEST(FormatTest, EndToEndSentenceFromEngine) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Emigre engine(f.g, f.opts);
  auto r = engine.Explain(WhyNotQuestion{f.user, f.wni}, Mode::kRemove,
                          Heuristic::kPowerset);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  std::string s = FormatExplanationSentence(f.g, r.value());
  EXPECT_NE(s.find("Had you not interacted with"), std::string::npos);
  EXPECT_NE(s.find(f.g.DisplayName(f.wni)), std::string::npos);
}

}  // namespace
}  // namespace emigre::explain
