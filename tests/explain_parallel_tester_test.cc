#include "explain/parallel_tester.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "explain/emigre.h"
#include "explain/fast_tester.h"
#include "explain/tester.h"
#include "ppr/options.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::EdgeRef;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Determinism contract on a stub tester
// ---------------------------------------------------------------------------

/// Thread-safe stub: a candidate passes iff its first edge's dst is in the
/// accept set. Lets the tests pick exactly which batch indices succeed.
class StubTester : public TesterInterface {
 public:
  explicit StubTester(std::vector<NodeId> accept_dsts)
      : accept_(std::move(accept_dsts)) {}

  bool Test(const std::vector<EdgeRef>& edits, Mode,
            NodeId* new_rec = nullptr) override {
    tests_.fetch_add(1, std::memory_order_relaxed);
    bool pass = false;
    for (NodeId a : accept_) {
      if (!edits.empty() && edits.front().dst == a) pass = true;
    }
    if (new_rec != nullptr) {
      *new_rec = pass && !edits.empty() ? edits.front().dst
                                        : graph::kInvalidNode;
    }
    return pass;
  }

  bool TestMixed(const std::vector<ModedEdit>& edits,
                 NodeId* new_rec = nullptr) override {
    std::vector<EdgeRef> plain;
    for (const ModedEdit& e : edits) plain.push_back(e.edge);
    return Test(plain, Mode::kRemove, new_rec);
  }

  size_t num_tests() const override {
    return tests_.load(std::memory_order_relaxed);
  }
  bool IsExact() const override { return true; }

 private:
  std::vector<NodeId> accept_;
  std::atomic<size_t> tests_{0};
};

std::vector<std::vector<EdgeRef>> MakeBatch(size_t n) {
  std::vector<std::vector<EdgeRef>> batch;
  for (size_t i = 0; i < n; ++i) {
    batch.push_back({EdgeRef{0, static_cast<NodeId>(i + 100), 0}});
  }
  return batch;
}

TEST(ParallelTesterContractTest, AcceptsLowestIndexSuccess) {
  // Candidates 2 and 5 both pass; every thread count must accept 2 — the
  // candidate a serial scan reaches first — even when a worker finishes
  // candidate 5 earlier.
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelTester tester(
        [] { return std::make_unique<StubTester>(
                 std::vector<NodeId>{102, 105}); },
        threads);
    auto verdict = tester.TestBatch(MakeBatch(16), Mode::kRemove);
    EXPECT_TRUE(verdict.Found()) << threads << " threads";
    EXPECT_EQ(verdict.accepted, 2u) << threads << " threads";
    EXPECT_EQ(verdict.new_rec, 102u) << threads << " threads";
  }
}

TEST(ParallelTesterContractTest, NoSuccessReportsNoIndex) {
  for (size_t threads : {1u, 4u}) {
    ParallelTester tester(
        [] { return std::make_unique<StubTester>(std::vector<NodeId>{}); },
        threads);
    auto verdict = tester.TestBatch(MakeBatch(10), Mode::kRemove);
    EXPECT_FALSE(verdict.Found());
    EXPECT_FALSE(verdict.BudgetHit());
    EXPECT_EQ(verdict.accepted, TesterInterface::kNoIndex);
    EXPECT_EQ(verdict.tested, 10u);
    EXPECT_EQ(tester.num_tests(), 10u);
  }
}

TEST(ParallelTesterContractTest, TestCapBudgetIsSerialEquivalent) {
  // Cap of 6 TESTs; the only success sits at index 9. A serial scan stops
  // at candidate 6 with the budget — the parallel run must NOT report the
  // index-9 success it may well have executed before the boundary settled.
  for (size_t threads : {1u, 2u, 8u}) {
    ParallelTester tester(
        [] { return std::make_unique<StubTester>(
                 std::vector<NodeId>{109}); },
        threads);
    auto verdict = tester.TestBatch(
        MakeBatch(12), Mode::kRemove,
        [](size_t tests_used) { return tests_used >= 6; });
    EXPECT_TRUE(verdict.BudgetHit()) << threads << " threads";
    EXPECT_FALSE(verdict.Found()) << threads << " threads";
    EXPECT_EQ(verdict.budget_index, 6u) << threads << " threads";
  }
}

TEST(ParallelTesterContractTest, SuccessBelowBudgetBoundaryStillWins) {
  // Success at index 1, cap fires from index 4 on: serial reaches the
  // success first, so must parallel.
  for (size_t threads : {1u, 4u}) {
    ParallelTester tester(
        [] { return std::make_unique<StubTester>(
                 std::vector<NodeId>{101}); },
        threads);
    auto verdict = tester.TestBatch(
        MakeBatch(12), Mode::kRemove,
        [](size_t tests_used) { return tests_used >= 4; });
    EXPECT_TRUE(verdict.Found()) << threads << " threads";
    EXPECT_EQ(verdict.accepted, 1u) << threads << " threads";
    EXPECT_FALSE(verdict.BudgetHit()) << threads << " threads";
  }
}

TEST(ParallelTesterContractTest, EmptyBatchIsANoop) {
  ParallelTester tester(
      [] { return std::make_unique<StubTester>(std::vector<NodeId>{}); }, 4);
  auto verdict = tester.TestBatch({}, Mode::kRemove);
  EXPECT_FALSE(verdict.Found());
  EXPECT_EQ(verdict.tested, 0u);
  EXPECT_EQ(tester.num_tests(), 0u);
}

TEST(ParallelTesterContractTest, NumTestsAggregatesAcrossWorkersAndModes) {
  ParallelTester tester(
      [] { return std::make_unique<StubTester>(std::vector<NodeId>{}); }, 4);
  tester.TestBatch(MakeBatch(20), Mode::kRemove);
  EXPECT_EQ(tester.num_tests(), 20u);
  // Serial single-candidate calls count into the same aggregate.
  NodeId rec = graph::kInvalidNode;
  tester.Test({EdgeRef{0, 100, 0}}, Mode::kRemove, &rec);
  EXPECT_EQ(tester.num_tests(), 21u);
}

TEST(ParallelTesterContractTest, CancellationSkipsWorkAfterEarlySuccess) {
  // Index 0 succeeds in a large batch: across tested + cancelled every
  // candidate is accounted for, and the accepted index stays 0.
  ParallelTester tester(
      [] { return std::make_unique<StubTester>(
               std::vector<NodeId>{100}); },
      4);
  auto batch = MakeBatch(64);
  auto verdict = tester.TestBatch(batch, Mode::kRemove);
  EXPECT_EQ(verdict.accepted, 0u);
  EXPECT_EQ(verdict.tested + verdict.cancelled, batch.size());
}

// ---------------------------------------------------------------------------
// The default serial TestBatch on the real testers
// ---------------------------------------------------------------------------

TEST(TestBatchDefaultTest, MatchesPerCandidateLoopOnExactTester) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Emigre engine(f.g, f.opts);
  NodeId rec = engine.CurrentRanking(f.user).Top();

  // Candidate batch: every allowed out-edge of the user as a singleton.
  std::vector<std::vector<EdgeRef>> batch;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    if (!f.opts.IsAllowedEdgeType(e.type)) continue;
    batch.push_back({EdgeRef{f.user, e.node, e.type}});
  }
  ASSERT_FALSE(batch.empty());
  (void)rec;

  ExplanationTester loop_tester(f.g, f.user, f.wni, f.opts);
  size_t loop_accepted = TesterInterface::kNoIndex;
  NodeId loop_rec = graph::kInvalidNode;
  for (size_t i = 0; i < batch.size(); ++i) {
    NodeId nr = graph::kInvalidNode;
    if (loop_tester.Test(batch[i], Mode::kRemove, &nr)) {
      loop_accepted = i;
      loop_rec = nr;
      break;
    }
  }

  ExplanationTester batch_tester(f.g, f.user, f.wni, f.opts);
  auto verdict = batch_tester.TestBatch(batch, Mode::kRemove);
  EXPECT_EQ(verdict.accepted, loop_accepted);
  if (verdict.Found()) {
    EXPECT_EQ(verdict.new_rec, loop_rec);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: parallel == serial on the Emigre facade
// ---------------------------------------------------------------------------

struct EngineCase {
  Mode mode;
  Heuristic heuristic;
};

void ExpectIdenticalExplanations(const graph::HinGraph& g,
                                 const EmigreOptions& base_opts, NodeId user,
                                 NodeId wni) {
  const EngineCase cases[] = {
      {Mode::kRemove, Heuristic::kExhaustive},
      {Mode::kRemove, Heuristic::kPowerset},
      {Mode::kRemove, Heuristic::kBruteForce},
      {Mode::kAdd, Heuristic::kExhaustive},
      {Mode::kAdd, Heuristic::kPowerset},
  };
  // Whole Explanations must agree across every (push engine × thread count)
  // combination: the kernel engine replays the legacy push schedule bit for
  // bit, and kFast — whose priority schedule is NOT bitwise-identical — is
  // held to the same bar because tester verdicts are schedule-independent
  // by construction (sub-noise scores floored to 0, exact ties broken by
  // ascending id). Swapping engines may not change a single accepted
  // candidate.
  struct Config {
    ppr::PushEngine engine;
    size_t threads;
  };
  const Config configs[] = {
      {ppr::PushEngine::kLegacy, 1},
      {ppr::PushEngine::kLegacy, 4},
      {ppr::PushEngine::kKernel, 1},
      {ppr::PushEngine::kKernel, 4},
      {ppr::PushEngine::kFast, 1},
      {ppr::PushEngine::kFast, 4},
  };
  for (TesterKind kind : {TesterKind::kExact, TesterKind::kDynamicPush}) {
    std::vector<std::unique_ptr<Emigre>> engines;
    for (const Config& cfg : configs) {
      EmigreOptions opts = base_opts;
      opts.tester = kind;
      opts.test_threads = cfg.threads;
      opts.rec.ppr.engine = cfg.engine;
      engines.push_back(std::make_unique<Emigre>(g, opts));
    }
    for (const EngineCase& c : cases) {
      auto a = engines[0]->Explain(WhyNotQuestion{user, wni}, c.mode,
                                   c.heuristic);
      for (size_t i = 1; i < engines.size(); ++i) {
        auto b = engines[i]->Explain(WhyNotQuestion{user, wni}, c.mode,
                                     c.heuristic);
        ASSERT_EQ(a.ok(), b.ok());
        if (!a.ok()) continue;
        SCOPED_TRACE(testing::Message()
                     << "mode=" << static_cast<int>(c.mode) << " heuristic="
                     << static_cast<int>(c.heuristic) << " kind="
                     << static_cast<int>(kind) << " engine="
                     << static_cast<int>(configs[i].engine) << " threads="
                     << configs[i].threads << " user=" << user
                     << " wni=" << wni);
        EXPECT_EQ(a->found, b->found);
        EXPECT_EQ(a->verified, b->verified);
        EXPECT_EQ(a->edges, b->edges);
        EXPECT_EQ(a->new_rec, b->new_rec);
        EXPECT_EQ(a->failure, b->failure);
        if (configs[i].engine != ppr::PushEngine::kFast) {
          // Work counters are only bitwise-stable for engines that replay
          // the legacy schedule; kFast may drop sub-epsilon candidates
          // from the search space, so it is held to the semantic fields
          // above but not to the exact candidate count.
          EXPECT_EQ(a->candidates_considered, b->candidates_considered);
        }
      }
    }
  }
}

TEST(ParallelEngineTest, CraftedCasesMatchSerial) {
  test::ScenarioFixture remove_case = test::MakeRemoveFriendlyCase();
  ExpectIdenticalExplanations(remove_case.g, remove_case.opts,
                              remove_case.user, remove_case.wni);
  test::ScenarioFixture add_case = test::MakeAddFriendlyCase();
  ExpectIdenticalExplanations(add_case.g, add_case.opts, add_case.user,
                              add_case.wni);
}

TEST(ParallelEngineTest, RandomHinsMatchSerial) {
  for (uint64_t seed : {11u, 29u}) {
    Rng rng(seed);
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 18, 3, 5);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    // One valid question per graph: the user's second-ranked item.
    Emigre probe(rh.g, opts);
    for (NodeId user : rh.users) {
      auto ranking = probe.CurrentRanking(user);
      if (ranking.size() < 2) continue;
      NodeId wni = ranking.at(1).item;
      if (!probe.ValidateQuestion(WhyNotQuestion{user, wni}, ranking.Top())
               .ok()) {
        continue;
      }
      ExpectIdenticalExplanations(rh.g, opts, user, wni);
      break;
    }
  }
}

#if GTEST_HAS_DEATH_TEST
// Regression for the one-search-at-a-time contract: a batch recursing into
// TestBatch (here via a tester that calls back into its owner) must abort
// via EMIGRE_CHECK instead of silently corrupting the per-slot testers.
TEST(ParallelTesterContractDeathTest, ReentrantTestBatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";

  class ReentrantTester : public TesterInterface {
   public:
    bool Test(const std::vector<EdgeRef>& edits, Mode mode,
              NodeId* /*new_rec*/) override {
      if (owner != nullptr) {
        (void)owner->TestBatch({edits}, mode);  // illegal: batch in flight
      }
      return false;
    }
    bool TestMixed(const std::vector<ModedEdit>&, NodeId*) override {
      return false;
    }
    size_t num_tests() const override { return 0; }
    bool IsExact() const override { return true; }

    ParallelTester* owner = nullptr;
  };

  ReentrantTester* inner = nullptr;
  // num_threads = 1: the whole cycle runs on this thread, so the recursion
  // is deterministic and the death-test child has no sibling threads.
  ParallelTester pt(
      [&inner]() {
        auto t = std::make_unique<ReentrantTester>();
        inner = t.get();
        return t;
      },
      1);
  ASSERT_NE(inner, nullptr);
  inner->owner = &pt;
  std::vector<std::vector<EdgeRef>> batch{{EdgeRef{0, 1, 0}}};
  EXPECT_DEATH((void)pt.TestBatch(batch, Mode::kRemove),
               "concurrent TestBatch");
}
#endif  // GTEST_HAS_DEATH_TEST

TEST(ParallelEngineTest, ZeroMeansHardwareThreads) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  EmigreOptions opts = f.opts;
  opts.test_threads = 0;  // hardware concurrency
  Emigre engine(f.g, opts);
  auto r = engine.Explain(WhyNotQuestion{f.user, f.wni}, Mode::kRemove,
                          Heuristic::kExhaustive);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->found);
}

}  // namespace
}  // namespace emigre::explain
