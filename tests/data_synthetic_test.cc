#include "data/synthetic_amazon.h"

#include <gtest/gtest.h>

#include <set>

#include "data/embedding.h"
#include "util/rng.h"

namespace emigre::data {
namespace {

SyntheticAmazonOptions SmallOptions() {
  SyntheticAmazonOptions opts;
  opts.num_users = 30;
  opts.num_items = 200;
  opts.num_categories = 8;
  opts.min_actions_per_user = 5;
  opts.max_actions_per_user = 20;
  return opts;
}

TEST(SyntheticAmazonTest, GeneratesRequestedCounts) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->users.size(), 30u);
  EXPECT_EQ(ds->items.size(), 200u);
  EXPECT_EQ(ds->categories.size(), 8u);
  EXPECT_GT(ds->ratings.size(), 0u);
  EXPECT_GT(ds->reviews.size(), 0u);
}

TEST(SyntheticAmazonTest, DeterministicForSameSeed) {
  Result<Dataset> a = GenerateSyntheticAmazon(SmallOptions());
  Result<Dataset> b = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ratings.size(), b->ratings.size());
  for (size_t i = 0; i < a->ratings.size(); ++i) {
    EXPECT_EQ(a->ratings[i].user, b->ratings[i].user);
    EXPECT_EQ(a->ratings[i].item, b->ratings[i].item);
    EXPECT_EQ(a->ratings[i].stars, b->ratings[i].stars);
  }
  ASSERT_EQ(a->reviews.size(), b->reviews.size());
  for (size_t i = 0; i < a->reviews.size(); ++i) {
    EXPECT_EQ(a->reviews[i].embedding, b->reviews[i].embedding);
  }
}

TEST(SyntheticAmazonTest, DifferentSeedsDiffer) {
  SyntheticAmazonOptions o1 = SmallOptions();
  SyntheticAmazonOptions o2 = SmallOptions();
  o2.seed = o1.seed + 1;
  Result<Dataset> a = GenerateSyntheticAmazon(o1);
  Result<Dataset> b = GenerateSyntheticAmazon(o2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differs = a->ratings.size() != b->ratings.size();
  for (size_t i = 0; !differs && i < a->ratings.size(); ++i) {
    differs = a->ratings[i].item != b->ratings[i].item;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticAmazonTest, StarsInRangeAndSkewedPositive) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok());
  size_t good = 0;
  for (const Rating& r : ds->ratings) {
    ASSERT_GE(r.stars, 1);
    ASSERT_LE(r.stars, 5);
    if (r.stars > 3) ++good;
  }
  // The positive skew must leave a solid majority of ratings above 3, so
  // the good-ratings filter keeps most of the graph.
  EXPECT_GT(static_cast<double>(good) / ds->ratings.size(), 0.5);
}

TEST(SyntheticAmazonTest, NoDuplicateUserItemPairs) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok());
  std::set<std::pair<UserId, ItemId>> pairs;
  for (const Rating& r : ds->ratings) {
    EXPECT_TRUE(pairs.insert({r.user, r.item}).second)
        << "duplicate rating " << r.user << "," << r.item;
  }
}

TEST(SyntheticAmazonTest, ActionsPerUserWithinBounds) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok());
  std::vector<size_t> counts(30, 0);
  for (const Rating& r : ds->ratings) ++counts[r.user];
  for (size_t c : counts) {
    EXPECT_LE(c, 20u);
    // The redraw loop can fall slightly short in tiny catalogs, but not to
    // zero.
    EXPECT_GT(c, 0u);
  }
}

TEST(SyntheticAmazonTest, ReviewsReferenceExistingRatings) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok());
  std::set<std::pair<UserId, ItemId>> rated;
  for (const Rating& r : ds->ratings) rated.insert({r.user, r.item});
  for (const Review& review : ds->reviews) {
    EXPECT_TRUE(rated.count({review.user, review.item}) > 0);
    EXPECT_EQ(review.embedding.size(), SmallOptions().embedding_dim);
  }
}

TEST(SyntheticAmazonTest, CategorySizesAreHeavyTailed) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallOptions());
  ASSERT_TRUE(ds.ok());
  std::vector<size_t> sizes(8, 0);
  for (const Item& item : ds->items) ++sizes[item.category];
  // The Zipf draw makes category 0 the largest by a clear margin.
  size_t max_size = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], max_size);
  EXPECT_GT(sizes[0], ds->items.size() / 8);
}

TEST(SyntheticAmazonTest, RejectsBadOptions) {
  SyntheticAmazonOptions opts = SmallOptions();
  opts.num_users = 0;
  EXPECT_TRUE(GenerateSyntheticAmazon(opts).status().IsInvalidArgument());
  opts = SmallOptions();
  opts.min_actions_per_user = 50;
  opts.max_actions_per_user = 10;
  EXPECT_TRUE(GenerateSyntheticAmazon(opts).status().IsInvalidArgument());
  opts = SmallOptions();
  opts.min_user_categories = 0;
  EXPECT_TRUE(GenerateSyntheticAmazon(opts).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Embeddings
// ---------------------------------------------------------------------------

TEST(EmbeddingTest, TopicsAreUnitNorm) {
  TopicEmbedder embedder(32, 8, 42);
  for (size_t t = 0; t < 8; ++t) {
    double norm = 0.0;
    for (float x : embedder.Topic(t)) norm += static_cast<double>(x) * x;
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(EmbeddingTest, SameTopicMoreSimilarThanCrossTopic) {
  TopicEmbedder embedder(32, 4, 7);
  Rng rng(9);
  double same = 0.0;
  double cross = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    auto a = embedder.Embed(0, 0.3, rng);
    auto b = embedder.Embed(0, 0.3, rng);
    auto c = embedder.Embed(1, 0.3, rng);
    same += CosineSimilarity(a, b);
    cross += CosineSimilarity(a, c);
  }
  EXPECT_GT(same / trials, cross / trials + 0.15);
}

TEST(EmbeddingTest, CosineEdgeCases) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  std::vector<float> zero = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, {1, 0, 0}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 0.0);
}

}  // namespace
}  // namespace emigre::data
