#include <gtest/gtest.h>

#include <fstream>
#include <utility>

#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "explain/emigre.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::eval {
namespace {

using graph::NodeId;

// ---------------------------------------------------------------------------
// Scenario generation
// ---------------------------------------------------------------------------

TEST(ScenarioTest, EmitsValidWhyNotQuestions) {
  Rng rng(17);
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 25, 3, 6);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);

  Result<std::vector<Scenario>> scenarios =
      GenerateScenarios(rh.g, rh.users, opts, 5);
  ASSERT_TRUE(scenarios.ok()) << scenarios.status();
  EXPECT_FALSE(scenarios->empty());

  explain::Emigre engine(rh.g, opts);
  for (const Scenario& s : *scenarios) {
    // Every scenario satisfies Definition 4.1.
    EXPECT_TRUE(engine.ValidateQuestion(
                          explain::WhyNotQuestion{s.user, s.wni},
                          s.original_rec)
                    .ok());
    EXPECT_GE(s.wni_rank, 1u);
    EXPECT_LT(s.wni_rank, 5u);
    // original_rec matches the recommender.
    EXPECT_EQ(s.original_rec, recsys::Recommend(rh.g, s.user, opts.rec));
  }
}

TEST(ScenarioTest, MaxPerUserTruncates) {
  Rng rng(18);
  test::RandomHin rh = test::MakeRandomHin(rng, 4, 25, 3, 6);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);
  Result<std::vector<Scenario>> scenarios =
      GenerateScenarios(rh.g, rh.users, opts, 10, 2);
  ASSERT_TRUE(scenarios.ok());
  EXPECT_LE(scenarios->size(), rh.users.size() * 2);
}

TEST(ScenarioTest, RejectsBadInputs) {
  test::BookGraph bg = test::MakeBookGraph();
  explain::EmigreOptions opts = test::MakeBookOptions(bg);
  EXPECT_TRUE(
      GenerateScenarios(bg.g, {bg.paul}, opts, 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      GenerateScenarios(bg.g, {999}, opts, 5).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Method registry
// ---------------------------------------------------------------------------

TEST(MethodsTest, PaperMethodsMatchSection62) {
  std::vector<MethodSpec> methods = PaperMethods();
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(methods[0].name, "add_Incremental");
  EXPECT_EQ(methods[7].name, "remove_brute");
  EXPECT_EQ(RemoveMethods().size(), 5u);
  EXPECT_EQ(AddMethods().size(), 3u);
  EXPECT_NE(FindMethod(methods, "remove_ex"), nullptr);
  EXPECT_EQ(FindMethod(methods, "nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Runner + metrics on a small real experiment
// ---------------------------------------------------------------------------

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    rh_ = test::MakeRandomHin(rng, 6, 20, 3, 5);
    opts_ = test::MakeRandomHinOptions(rh_);
    Result<std::vector<Scenario>> scenarios =
        GenerateScenarios(rh_.g, rh_.users, opts_, 4, 2);
    ASSERT_TRUE(scenarios.ok());
    scenarios_ = std::move(scenarios).value();
    ASSERT_FALSE(scenarios_.empty());
  }

  test::RandomHin rh_;
  explain::EmigreOptions opts_;
  std::vector<Scenario> scenarios_;
};

TEST_F(RunnerTest, ProducesOneRecordPerMethodScenarioPair) {
  std::vector<MethodSpec> methods = PaperMethods();
  Result<ExperimentResult> result =
      RunExperiment(rh_.g, scenarios_, methods, opts_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), scenarios_.size() * methods.size());
  for (const ScenarioRecord& r : result->records) {
    EXPECT_FALSE(r.method.empty());
    EXPECT_GE(r.seconds, 0.0);
    if (r.correct) {
      EXPECT_TRUE(r.returned);
    }
    if (r.returned) {
      EXPECT_GT(r.explanation_size, 0u);
    }
  }
}

TEST_F(RunnerTest, ParallelMatchesSerialOutcomes) {
  std::vector<MethodSpec> methods = {PaperMethods()[0], PaperMethods()[3]};
  Result<ExperimentResult> serial =
      RunExperiment(rh_.g, scenarios_, methods, opts_, RunnerOptions{1, 0});
  RunnerOptions parallel_opts;
  parallel_opts.num_threads = 4;
  Result<ExperimentResult> parallel =
      RunExperiment(rh_.g, scenarios_, methods, opts_, parallel_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->records.size(), parallel->records.size());
  for (size_t i = 0; i < serial->records.size(); ++i) {
    EXPECT_EQ(serial->records[i].correct, parallel->records[i].correct);
    EXPECT_EQ(serial->records[i].explanation_size,
              parallel->records[i].explanation_size);
  }
}

TEST_F(RunnerTest, VerifiedMethodsNeverReturnIncorrect) {
  // All non-direct methods verify internally: returned implies correct.
  std::vector<MethodSpec> methods = PaperMethods();
  Result<ExperimentResult> result =
      RunExperiment(rh_.g, scenarios_, methods, opts_);
  ASSERT_TRUE(result.ok());
  for (const ScenarioRecord& r : result->records) {
    if (r.method != "remove_ex_direct" && r.returned) {
      EXPECT_TRUE(r.correct) << r.method;
    }
  }
}

TEST_F(RunnerTest, AggregateComputesRates) {
  std::vector<MethodSpec> methods = PaperMethods();
  Result<ExperimentResult> result =
      RunExperiment(rh_.g, scenarios_, methods, opts_);
  ASSERT_TRUE(result.ok());
  std::vector<std::string> names;
  for (const MethodSpec& m : methods) names.push_back(m.name);
  std::vector<MethodAggregate> aggs = Aggregate(result.value(), names);
  ASSERT_EQ(aggs.size(), methods.size());
  for (const MethodAggregate& a : aggs) {
    EXPECT_EQ(a.scenarios, scenarios_.size());
    EXPECT_GE(a.success_rate, 0.0);
    EXPECT_LE(a.success_rate, 100.0);
    EXPECT_GE(a.returned, a.correct);
  }
}

TEST_F(RunnerTest, OracleSubsetAndRelativeAggregation) {
  std::vector<MethodSpec> methods = RemoveMethods();
  Result<ExperimentResult> result =
      RunExperiment(rh_.g, scenarios_, methods, opts_);
  ASSERT_TRUE(result.ok());
  auto solvable = OracleSolvableScenarios(result.value(), "remove_brute");
  std::vector<std::string> names;
  for (const MethodSpec& m : methods) names.push_back(m.name);
  std::vector<MethodAggregate> aggs =
      AggregateOnScenarios(result.value(), names, solvable);
  for (const MethodAggregate& a : aggs) {
    EXPECT_EQ(a.scenarios, solvable.size());
    if (a.method == "remove_brute" && !solvable.empty()) {
      EXPECT_DOUBLE_EQ(a.success_rate, 100.0);
    }
  }
}

TEST_F(RunnerTest, RecordsCsvRoundTripsThroughDisk) {
  std::vector<MethodSpec> methods = {PaperMethods()[3]};
  Result<ExperimentResult> result =
      RunExperiment(rh_.g, scenarios_, methods, opts_);
  ASSERT_TRUE(result.ok());
  std::string path = test::MakeTempDir("eval") + "/records.csv";
  ASSERT_TRUE(WriteRecordsCsv(result.value(), path).ok());
  Result<ExperimentResult> loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->records.size(), result->records.size());
  for (size_t i = 0; i < loaded->records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].method, result->records[i].method);
    EXPECT_EQ(loaded->records[i].correct, result->records[i].correct);
    EXPECT_EQ(loaded->records[i].explanation_size,
              result->records[i].explanation_size);
    EXPECT_NEAR(loaded->records[i].seconds, result->records[i].seconds,
                1e-5);
  }
}

TEST_F(RunnerTest, RecordsCsvRoundTripsEveryFailureReason) {
  // One synthetic record per FailureReason value: the loader must map every
  // name back to the right enum value (no reason may silently collapse to
  // kNone).
  ExperimentResult result;
  for (explain::FailureReason reason : explain::kAllFailureReasons) {
    ScenarioRecord r;
    r.method = "m";
    r.scenario.user = 1;
    r.scenario.wni = 2;
    r.failure = reason;
    result.records.push_back(r);
  }
  std::string path = test::MakeTempDir("eval_fail") + "/records.csv";
  ASSERT_TRUE(WriteRecordsCsv(result, path).ok());
  Result<ExperimentResult> loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->records.size(), result.records.size());
  for (size_t i = 0; i < loaded->records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].failure, result.records[i].failure)
        << explain::FailureReasonName(result.records[i].failure);
  }
}

TEST_F(RunnerTest, LoadRecordsCsvRejectsUnknownFailureReason) {
  std::string path = test::MakeTempDir("eval_bad") + "/records.csv";
  {
    std::ofstream f(path);
    f << "method,user,wni,wni_rank,returned,correct,size,seconds,failure\n";
    f << "m,1,2,3,1,1,1,0.5,totally-new-reason\n";
  }
  Result<ExperimentResult> loaded = LoadRecordsCsv(path);
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

TEST_F(RunnerTest, NestedTestThreadParallelismMatchesSerial) {
  // Scenario-level × candidate-level parallelism: the composed run must
  // produce the same records as the fully serial one.
  std::vector<MethodSpec> methods = {*FindMethod(PaperMethods(), "add_ex"),
                                     *FindMethod(PaperMethods(),
                                                 "remove_brute")};
  Result<ExperimentResult> serial =
      RunExperiment(rh_.g, scenarios_, methods, opts_, RunnerOptions{1, 0});
  explain::EmigreOptions nested_opts = opts_;
  nested_opts.test_threads = 2;
  RunnerOptions run_opts;
  run_opts.num_threads = 2;
  Result<ExperimentResult> nested =
      RunExperiment(rh_.g, scenarios_, methods, nested_opts, run_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(nested.ok());
  ASSERT_EQ(serial->records.size(), nested->records.size());
  for (size_t i = 0; i < serial->records.size(); ++i) {
    EXPECT_EQ(serial->records[i].correct, nested->records[i].correct);
    EXPECT_EQ(serial->records[i].returned, nested->records[i].returned);
    EXPECT_EQ(serial->records[i].explanation_size,
              nested->records[i].explanation_size);
    EXPECT_EQ(serial->records[i].failure, nested->records[i].failure);
  }
}

TEST(RunnerDiagnosisTest, PopularItemFailuresAreLabelled) {
  // The Fig.-7 fixture: a bestseller carried by other users. The runner
  // must refine the remove-mode failure into the popular-item category.
  graph::HinGraph g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto rated = g.RegisterEdgeType("rated");
  NodeId probe = g.AddNode(user_type, "probe");
  NodeId hub = g.AddNode(item_type, "hub");
  NodeId niche = g.AddNode(item_type, "niche");
  NodeId bridge = g.AddNode(item_type, "bridge");
  ASSERT_TRUE(g.AddBidirectional(probe, bridge, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(bridge, hub, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(bridge, niche, rated).ok());
  for (int i = 0; i < 10; ++i) {
    NodeId fan = g.AddNode(user_type);
    ASSERT_TRUE(g.AddBidirectional(fan, hub, rated).ok());
  }

  explain::EmigreOptions opts;
  opts.rec.item_type = item_type;
  opts.allowed_edge_types = {rated};
  opts.add_edge_type = rated;

  std::vector<Scenario> scenarios = {
      Scenario{probe, niche, 1, recsys::Recommend(g, probe, opts.rec)}};
  std::vector<MethodSpec> methods = {
      {"remove_Incremental", explain::Mode::kRemove,
       explain::Heuristic::kIncremental}};
  Result<ExperimentResult> result =
      RunExperiment(g, scenarios, methods, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_FALSE(result->records[0].correct);
  EXPECT_EQ(result->records[0].failure,
            explain::FailureReason::kPopularItem);
}

// ---------------------------------------------------------------------------
// Metrics math on synthetic records
// ---------------------------------------------------------------------------

TEST(MetricsTest, AggregateMathIsExact) {
  ExperimentResult result;
  auto add = [&](bool returned, bool correct, size_t size, double sec) {
    ScenarioRecord r;
    r.method = "m";
    r.returned = returned;
    r.correct = correct;
    r.explanation_size = size;
    r.seconds = sec;
    result.records.push_back(r);
  };
  add(true, true, 2, 1.0);
  add(true, true, 4, 3.0);
  add(true, false, 7, 2.0);  // returned but wrong (direct-style)
  add(false, false, 0, 4.0);

  std::vector<MethodAggregate> aggs = Aggregate(result, {"m"});
  ASSERT_EQ(aggs.size(), 1u);
  const MethodAggregate& a = aggs[0];
  EXPECT_EQ(a.scenarios, 4u);
  EXPECT_EQ(a.returned, 3u);
  EXPECT_EQ(a.correct, 2u);
  EXPECT_DOUBLE_EQ(a.success_rate, 50.0);
  EXPECT_DOUBLE_EQ(a.avg_size, 3.0);           // (2+4)/2 over correct
  EXPECT_DOUBLE_EQ(a.avg_time_all, 2.5);       // (1+3+2+4)/4
  EXPECT_DOUBLE_EQ(a.avg_time_found, 2.0);     // (1+3+2)/3
  EXPECT_DOUBLE_EQ(a.avg_time_not_found, 4.0); // 4/1
  // Ceil nearest-rank percentiles over {1, 2, 3, 4}: p50 is rank
  // ⌈0.5·4⌉ = 2, p95 is rank ⌈0.95·4⌉ = 4.
  EXPECT_DOUBLE_EQ(a.p50_time, 2.0);
  EXPECT_DOUBLE_EQ(a.p95_time, 4.0);
}

TEST(MetricsTest, PercentilesUseCeilNearestRank) {
  // Aggregate n records with seconds 1..n and check the percentile fields;
  // this pins the nearest-rank convention (rank ⌈fraction·n⌉, 1-based).
  auto percentiles = [](size_t n) {
    ExperimentResult result;
    for (size_t i = 1; i <= n; ++i) {
      ScenarioRecord r;
      r.method = "m";
      r.seconds = static_cast<double>(i);
      result.records.push_back(r);
    }
    std::vector<MethodAggregate> aggs = Aggregate(result, {"m"});
    return std::make_pair(aggs[0].p50_time, aggs[0].p95_time);
  };

  EXPECT_EQ(percentiles(1), std::make_pair(1.0, 1.0));
  // n = 2: p50 must be the LOWER sample (the old `fraction·(n−1)+0.5`
  // formula rounded up to the max).
  EXPECT_EQ(percentiles(2), std::make_pair(1.0, 2.0));
  EXPECT_EQ(percentiles(3), std::make_pair(2.0, 3.0));
  // n = 20: p50 = rank 10, p95 = rank 19 (conventional, not the max).
  EXPECT_EQ(percentiles(20), std::make_pair(10.0, 19.0));
}

TEST(MetricsTest, UnknownMethodYieldsEmptyAggregate) {
  ExperimentResult result;
  std::vector<MethodAggregate> aggs = Aggregate(result, {"ghost"});
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].scenarios, 0u);
  EXPECT_DOUBLE_EQ(aggs[0].success_rate, 0.0);
}

// ---------------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------------

TEST(ReportTest, FailureBreakdownCountsReasons) {
  ExperimentResult result;
  auto add = [&](bool correct, explain::FailureReason reason) {
    ScenarioRecord r;
    r.method = "m";
    r.correct = correct;
    r.failure = reason;
    result.records.push_back(r);
  };
  add(true, explain::FailureReason::kNone);
  add(false, explain::FailureReason::kColdStart);
  add(false, explain::FailureReason::kColdStart);
  add(false, explain::FailureReason::kPopularItem);
  std::string s = FormatFailureBreakdown(result, {"m"});
  EXPECT_NE(s.find("cold-start"), std::string::npos);
  EXPECT_NE(s.find("popular-item"), std::string::npos);
  // 3 failed in total, 2 cold starts.
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(ReportTest, FormattersMentionEveryMethod) {
  MethodAggregate a;
  a.method = "add_Incremental";
  a.scenarios = 10;
  a.returned = 6;
  a.correct = 6;
  a.success_rate = 60.0;
  a.avg_size = 2.5;
  a.avg_time_all = 0.5;
  a.avg_time_found = 0.4;
  a.avg_time_not_found = 0.7;
  MethodAggregate b = a;
  b.method = "remove_brute";
  b.success_rate = 30.0;

  std::vector<MethodAggregate> aggs = {a, b};
  std::string fig4 = FormatFigure4(aggs);
  EXPECT_NE(fig4.find("add_Incremental"), std::string::npos);
  EXPECT_NE(fig4.find("Figure 4"), std::string::npos);

  std::string fig5 = FormatFigure5(aggs, "remove_brute");
  EXPECT_NE(fig5.find("Relative"), std::string::npos);
  EXPECT_NE(fig5.find("200%"), std::string::npos);  // 60/30 relative

  std::string fig6 = FormatFigure6(aggs);
  EXPECT_NE(fig6.find("2.5 edges"), std::string::npos);

  std::string t5 = FormatTable5(aggs);
  EXPECT_NE(t5.find("Table 5"), std::string::npos);
  EXPECT_NE(t5.find("(b) found"), std::string::npos);
}

}  // namespace
}  // namespace emigre::eval
