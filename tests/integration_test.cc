// End-to-end integration: dataset synthesis -> §6.1 preprocessing ->
// scenario generation -> all eight §6.2 methods -> aggregation, checking
// the cross-module invariants the paper's evaluation relies on.

#include <gtest/gtest.h>

#include <set>

#include "data/amazon_lite.h"
#include "data/synthetic_amazon.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "explain/emigre.h"
#include "explain/tester.h"
#include "graph/validate.h"
#include "recsys/recommender.h"

namespace emigre {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticAmazonOptions gen;
    gen.num_users = 40;
    gen.num_items = 250;
    gen.num_categories = 8;
    gen.min_actions_per_user = 6;
    gen.max_actions_per_user = 25;
    Result<data::Dataset> ds = data::GenerateSyntheticAmazon(gen);
    ASSERT_TRUE(ds.ok()) << ds.status();

    data::AmazonLiteOptions lite_opts;
    lite_opts.sample_users = 6;
    lite_opts.min_user_actions = 5;
    Result<data::AmazonLiteGraph> lite =
        data::BuildAmazonLite(ds.value(), lite_opts);
    ASSERT_TRUE(lite.ok()) << lite.status();
    lite_ = new data::AmazonLiteGraph(std::move(lite).value());

    opts_ = new explain::EmigreOptions();
    opts_->rec.item_type = lite_->item_type;
    opts_->allowed_edge_types = {lite_->rated_type, lite_->reviewed_type};
    opts_->add_edge_type = lite_->rated_type;
    opts_->rec.ppr.epsilon = 1e-7;
    opts_->deadline_seconds = 1.0;

    Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
        lite_->graph, lite_->eval_users, *opts_, 4, 2);
    ASSERT_TRUE(scenarios.ok());
    scenarios_ = new std::vector<eval::Scenario>(std::move(scenarios).value());
    ASSERT_FALSE(scenarios_->empty());

    Result<eval::ExperimentResult> result = eval::RunExperiment(
        lite_->graph, *scenarios_, eval::PaperMethods(), *opts_);
    ASSERT_TRUE(result.ok()) << result.status();
    result_ = new eval::ExperimentResult(std::move(result).value());
  }

  static void TearDownTestSuite() {
    delete result_;
    delete scenarios_;
    delete opts_;
    delete lite_;
  }

  static data::AmazonLiteGraph* lite_;
  static explain::EmigreOptions* opts_;
  static std::vector<eval::Scenario>* scenarios_;
  static eval::ExperimentResult* result_;
};

data::AmazonLiteGraph* PipelineTest::lite_ = nullptr;
explain::EmigreOptions* PipelineTest::opts_ = nullptr;
std::vector<eval::Scenario>* PipelineTest::scenarios_ = nullptr;
eval::ExperimentResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, GraphIsStructurallySound) {
  EXPECT_TRUE(graph::ValidateGraph(lite_->graph).ok());
  EXPECT_GT(lite_->graph.NumNodes(), 100u);
  EXPECT_GT(lite_->graph.NumEdges(), 200u);
}

TEST_F(PipelineTest, RecordsCoverEveryMethodScenarioPair) {
  EXPECT_EQ(result_->records.size(), scenarios_->size() * 8);
  std::set<std::string> methods;
  for (const auto& r : result_->records) methods.insert(r.method);
  EXPECT_EQ(methods.size(), 8u);
}

TEST_F(PipelineTest, InternallyVerifiedMethodsAreAlwaysCorrect) {
  for (const auto& r : result_->records) {
    if (r.method != "remove_ex_direct" && r.returned) {
      EXPECT_TRUE(r.correct) << r.method << " user " << r.scenario.user;
    }
  }
}

TEST_F(PipelineTest, DirectNeverBeatsVerifiedExhaustive) {
  // remove_ex_direct returns the same candidates remove_ex would test
  // first; its *correct* count cannot exceed remove_ex's.
  auto aggs = eval::Aggregate(*result_, {"remove_ex", "remove_ex_direct"});
  EXPECT_GE(aggs[0].correct, aggs[1].correct);
}

TEST_F(PipelineTest, OracleDominatesSizeCappedRemoveSearches) {
  // On every scenario where a size-capped remove search succeeded, the
  // brute-force oracle (same caps, bigger enumeration) succeeded too —
  // unless the oracle's own wall-clock budget cut its enumeration short
  // (routine in slow sanitizer builds), which makes the claim vacuous.
  std::set<std::pair<graph::NodeId, graph::NodeId>> solved_by_oracle;
  std::set<std::pair<graph::NodeId, graph::NodeId>> oracle_timed_out;
  for (const auto& r : result_->records) {
    if (r.method != "remove_brute") continue;
    if (r.correct) {
      solved_by_oracle.insert({r.scenario.user, r.scenario.wni});
    } else if (r.failure == explain::FailureReason::kBudgetExceeded) {
      oracle_timed_out.insert({r.scenario.user, r.scenario.wni});
    }
  }
  for (const auto& r : result_->records) {
    if (oracle_timed_out.count({r.scenario.user, r.scenario.wni}) > 0) {
      continue;
    }
    if ((r.method == "remove_Powerset" || r.method == "remove_ex") &&
        r.correct && r.failure != explain::FailureReason::kBudgetExceeded) {
      EXPECT_TRUE(solved_by_oracle.count(
                      {r.scenario.user, r.scenario.wni}) > 0)
          << r.method << " solved a scenario the oracle missed (user "
          << r.scenario.user << ", wni " << r.scenario.wni << ")";
    }
  }
}

TEST_F(PipelineTest, ExplanationsReVerifyAgainstTheGraph) {
  // Spot-check: re-run two methods and confirm every found explanation
  // actually flips the recommendation.
  explain::Emigre engine(lite_->graph, *opts_);
  size_t verified = 0;
  for (const eval::Scenario& s : *scenarios_) {
    for (explain::Mode mode :
         {explain::Mode::kRemove, explain::Mode::kAdd}) {
      Result<explain::Explanation> e =
          engine.Explain(explain::WhyNotQuestion{s.user, s.wni}, mode,
                         explain::Heuristic::kIncremental);
      ASSERT_TRUE(e.ok());
      if (!e->found) continue;
      explain::ExplanationTester checker(lite_->graph, s.user, s.wni,
                                         *opts_);
      EXPECT_TRUE(checker.Test(e->edges, mode));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u) << "no scenario produced an explanation at all";
}

TEST_F(PipelineTest, ReportsRenderForRealAggregates) {
  std::vector<std::string> names;
  for (const auto& m : eval::PaperMethods()) names.push_back(m.name);
  auto aggs = eval::Aggregate(*result_, names);
  EXPECT_FALSE(eval::FormatFigure4(aggs).empty());
  EXPECT_FALSE(eval::FormatFigure6(aggs).empty());
  EXPECT_FALSE(eval::FormatTable5(aggs).empty());
  auto solvable = eval::OracleSolvableScenarios(*result_, "remove_brute");
  auto fig5 = eval::AggregateOnScenarios(*result_, names, solvable);
  EXPECT_FALSE(eval::FormatFigure5(fig5, "remove_brute").empty());
}

}  // namespace
}  // namespace emigre
