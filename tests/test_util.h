#ifndef EMIGRE_TESTS_TEST_UTIL_H_
#define EMIGRE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "explain/options.h"
#include "graph/hin_graph.h"
#include "util/rng.h"

namespace emigre::test {

/// \brief The running-example-style book store fixture (paper Fig. 1).
///
/// Three users, six books in three categories, bidirectional rated /
/// belongs-to edges and directed follows edges. Small enough for exact
/// reasoning, rich enough that Remove and Add explanations both exist for
/// some Why-Not questions.
struct BookGraph {
  graph::HinGraph g;
  graph::NodeTypeId user_type, item_type, category_type;
  graph::EdgeTypeId rated, follows, belongs_to;

  graph::NodeId paul, alice, bob;
  graph::NodeId harry_potter, lotr, python, c_lang, candide, alchemist;
  graph::NodeId fantasy, programming, classics;
};

/// Builds the fixture. All tests share this exact topology.
BookGraph MakeBookGraph();

/// EmigreOptions pre-wired for a BookGraph (item type, rated-only action
/// vocabulary, rated as the add-edge type).
explain::EmigreOptions MakeBookOptions(const BookGraph& bg);

/// \brief A random user–item–category HIN for property sweeps.
///
/// `num_users` users each rate `actions` items drawn at random (duplicates
/// skipped); items spread over `num_categories` categories; everything
/// bidirectional. Node ids: users first, then items, then categories.
struct RandomHin {
  graph::HinGraph g;
  graph::NodeTypeId user_type, item_type, category_type;
  graph::EdgeTypeId rated, belongs_to;
  std::vector<graph::NodeId> users;
  std::vector<graph::NodeId> items;
};

RandomHin MakeRandomHin(Rng& rng, size_t num_users, size_t num_items,
                        size_t num_categories, size_t actions_per_user);

/// EmigreOptions pre-wired for a RandomHin.
explain::EmigreOptions MakeRandomHinOptions(const RandomHin& rh);

/// \brief A crafted single-scenario case: graph + options + a Why-Not
/// question with a known-solvable structure.
struct ScenarioFixture {
  graph::HinGraph g;
  explain::EmigreOptions opts;
  graph::NodeId user = graph::kInvalidNode;
  graph::NodeId wni = graph::kInvalidNode;
};

/// A case where ADD mode provably succeeds with a single positive-
/// contribution edge (and Remove mode also has a solution): the user's
/// lone action funnels score into the recommended cluster, while an
/// un-interacted "bridge" item funnels into the Why-Not item's cluster.
ScenarioFixture MakeAddFriendlyCase();

/// A case where REMOVE mode provably succeeds by undoing the single edge
/// that carries the recommendation's score.
ScenarioFixture MakeRemoveFriendlyCase();

/// Creates a unique temporary directory for a test and returns its path.
std::string MakeTempDir(const std::string& prefix);

}  // namespace emigre::test

#endif  // EMIGRE_TESTS_TEST_UTIL_H_
