// Chaos harness (docs/robustness.md): the FaultRegistry unit contract, and
// randomized seeded fault schedules over full explain queries asserting no
// crash, typed failures only, validator-clean state after every recovery,
// and exact metrics accounting of every fired fault.
//
// The registry itself works in every build; only the `EMIGRE_FAULT_POINT`
// sites compile away without -DEMIGRE_FAULT_INJECTION=ON, so the soak
// degenerates to a plain-pipeline pass there (asserted explicitly).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "eval/chaos.h"
#include "eval/scenario.h"
#include "explain/options.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/status.h"

namespace emigre {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Reset(); }
  void TearDown() override { fault::FaultRegistry::Global().Reset(); }
};

TEST_F(FaultRegistryTest, ArmRejectsMalformedSpecs) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec no_site;
  EXPECT_FALSE(reg.Arm(no_site).ok());
  fault::FaultSpec no_trigger;
  no_trigger.site = "x";
  no_trigger.nth = 0;
  no_trigger.probability = 0.0;
  EXPECT_FALSE(reg.Arm(no_trigger).ok());
  fault::FaultSpec ok_code;
  ok_code.site = "x";
  ok_code.code = StatusCode::kOk;
  EXPECT_FALSE(reg.Arm(ok_code).ok());
}

TEST_F(FaultRegistryTest, NthHitTriggerFiresDeterministically) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec spec;
  spec.site = "test.site";
  spec.nth = 3;
  spec.max_fires = 1;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(reg.Arm(spec).ok());
  EXPECT_TRUE(reg.Check("test.site").ok());
  EXPECT_TRUE(reg.Check("test.site").ok());
  Status third = reg.Check("test.site");
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kIOError);
  // max_fires = 1: the fourth hit passes again.
  EXPECT_TRUE(reg.Check("test.site").ok());
  EXPECT_EQ(reg.hits("test.site"), 4u);
  EXPECT_EQ(reg.fires("test.site"), 1u);
  // Unarmed sites never fire.
  EXPECT_TRUE(reg.Check("not.armed").ok());
}

TEST_F(FaultRegistryTest, ProbabilisticTriggerReplaysUnderTheSameSeed) {
  auto& reg = fault::FaultRegistry::Global();
  auto run_schedule = [&reg]() {
    reg.Reset();
    reg.SetSeed(42);
    fault::FaultSpec spec;
    spec.site = "test.prob";
    spec.nth = 0;
    spec.probability = 0.5;
    spec.max_fires = 0;  // unlimited
    EXPECT_TRUE(reg.Arm(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!reg.Check("test.prob").ok());
    return fired;
  };
  std::vector<bool> first = run_schedule();
  std::vector<bool> second = run_schedule();
  EXPECT_EQ(first, second);
  size_t fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultRegistryTest, CheckOrThrowRaisesTypedExceptions) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec status_fault;
  status_fault.site = "test.throw.status";
  status_fault.code = StatusCode::kResourceExhausted;
  ASSERT_TRUE(reg.Arm(status_fault).ok());
  try {
    reg.CheckOrThrow("test.throw.status");
    FAIL() << "expected InjectedFaultError";
  } catch (const fault::InjectedFaultError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
  }
  fault::FaultSpec foreign;
  foreign.site = "test.throw.foreign";
  foreign.kind = fault::FaultKind::kThrow;
  ASSERT_TRUE(reg.Arm(foreign).ok());
  EXPECT_THROW(reg.CheckOrThrow("test.throw.foreign"), std::runtime_error);
}

TEST_F(FaultRegistryTest, EveryFireIsCountedInTheObsRegistry) {
  auto& reg = fault::FaultRegistry::Global();
  uint64_t before =
      obs::Registry::Global().GetCounter("fault.test.counted.fired").Value();
  fault::FaultSpec spec;
  spec.site = "test.counted";
  spec.nth = 1;
  spec.max_fires = 3;
  ASSERT_TRUE(reg.Arm(spec).ok());
  for (int i = 0; i < 5; ++i) (void)reg.Check("test.counted");
  EXPECT_EQ(reg.fires("test.counted"), 3u);
  uint64_t after =
      obs::Registry::Global().GetCounter("fault.test.counted.fired").Value();
  EXPECT_EQ(after - before, 3u);
  auto counts = reg.FireCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].first, "test.counted");
  EXPECT_EQ(counts[0].second, 3u);
}

TEST_F(FaultRegistryTest, ArmFromStringParsesTheCliGrammar) {
  auto& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg
                  .ArmFromString("site=ppr.flp.kernel,kind=status,nth=2,"
                                 "max=1,code=IOError,msg=boom")
                  .ok());
  EXPECT_TRUE(reg.Check("ppr.flp.kernel").ok());
  Status fired = reg.Check("ppr.flp.kernel");
  EXPECT_EQ(fired.code(), StatusCode::kIOError);
  EXPECT_EQ(fired.message(), "boom");
  EXPECT_FALSE(reg.ArmFromString("kind=status").ok());       // no site
  EXPECT_FALSE(reg.ArmFromString("site=x,kind=bogus").ok()); // bad kind
  EXPECT_FALSE(reg.ArmFromString("site=x,nth=abc").ok());    // bad number
  EXPECT_FALSE(reg.ArmFromString("site=x,zzz=1").ok());      // bad key
}

// ---------------------------------------------------------------------------
// The chaos soak: ISSUE acceptance — >= 20 fixed seeds across all
// heuristics, zero crashes, typed outcomes, validator-clean recoveries,
// exact fault accounting.

TEST(ChaosSoakTest, TwentySeededSchedulesSurviveWithTypedOutcomes) {
  Rng rng(5);
  test::RandomHin rh = test::MakeRandomHin(rng, 16, 40, 4, 6);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);
  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      rh.g, rh.users, opts, /*top_k=*/4, /*max_per_user=*/1);
  ASSERT_TRUE(scenarios.ok()) << scenarios.status().ToString();
  ASSERT_FALSE(scenarios->empty());

  eval::ChaosOptions chaos_opts;
  chaos_opts.base_seed = 20260807;
  chaos_opts.num_schedules = 20;
  chaos_opts.queries_per_schedule = 2;
  chaos_opts.heuristics = {explain::Heuristic::kIncremental,
                           explain::Heuristic::kPowerset,
                           explain::Heuristic::kExhaustive};
  chaos_opts.test_threads = 2;

  Result<eval::ChaosReport> report =
      eval::RunChaosSoak(rh.g, scenarios.value(), opts, chaos_opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) {
    ADD_FAILURE() << "chaos violation: " << v;
  }
  EXPECT_EQ(report->schedules_run, 20u);
  EXPECT_EQ(report->queries_run, 40u);
  if (fault::kFaultInjectionEnabled) {
    // With sites compiled in, a 20-schedule soak must actually inject.
    EXPECT_GT(report->faults_fired, 0u);
    EXPECT_GT(report->typed_failures, 0u);
  } else {
    // Plain build: the sites are no-ops; nothing may fire and every query
    // must succeed as usual.
    EXPECT_EQ(report->faults_fired, 0u);
    EXPECT_EQ(report->typed_failures, 0u);
  }
  // The registry never leaks armed faults out of the soak.
  EXPECT_FALSE(fault::FaultRegistry::Global().armed());
}

TEST(ChaosSoakTest, SoakIsDeterministicPerSeed) {
  Rng rng(9);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 24, 3, 5);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);
  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      rh.g, rh.users, opts, /*top_k=*/3, /*max_per_user=*/1);
  ASSERT_TRUE(scenarios.ok()) << scenarios.status().ToString();
  ASSERT_FALSE(scenarios->empty());

  eval::ChaosOptions chaos_opts;
  chaos_opts.base_seed = 7;
  chaos_opts.num_schedules = 4;
  chaos_opts.queries_per_schedule = 2;
  chaos_opts.test_threads = 1;    // single-threaded soaks replay exactly
  chaos_opts.tiny_deadlines = false;  // wall-clock expiry is not replayable

  Result<eval::ChaosReport> first =
      eval::RunChaosSoak(rh.g, scenarios.value(), opts, chaos_opts);
  Result<eval::ChaosReport> second =
      eval::RunChaosSoak(rh.g, scenarios.value(), opts, chaos_opts);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(first->ok());
  EXPECT_TRUE(second->ok());
  EXPECT_EQ(first->faults_fired, second->faults_fired);
  EXPECT_EQ(first->typed_failures, second->typed_failures);
  EXPECT_EQ(first->degraded_results, second->degraded_results);
  EXPECT_EQ(first->explanations_found, second->explanations_found);
}

}  // namespace
}  // namespace emigre
