#include "ppr/dynamic.h"

#include <gtest/gtest.h>

#include "ppr/power_iteration.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::ppr {
namespace {

using graph::HinGraph;
using graph::NodeId;

// Absolute tolerance for comparing maintained estimates against a fresh
// power iteration: per-node error is bounded by the push threshold times
// the node degree; use a comfortable multiple.
constexpr double kTol = 1e-5;

TEST(DynamicPushTest, MatchesFreshComputationAfterEdgeAddition) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-9;
  DynamicForwardPush<HinGraph> dyn(bg.g, bg.paul, opts);

  dyn.BeforeOutEdgeChange(bg.paul);
  ASSERT_TRUE(bg.g.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  dyn.AfterOutEdgeChange(bg.paul);

  std::vector<double> fresh = PowerIterationPpr(bg.g, bg.paul, opts);
  for (NodeId t = 0; t < bg.g.NumNodes(); ++t) {
    EXPECT_NEAR(dyn.Estimate(t), fresh[t], kTol) << "t=" << t;
  }
}

TEST(DynamicPushTest, MatchesFreshComputationAfterEdgeRemoval) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-9;
  DynamicForwardPush<HinGraph> dyn(bg.g, bg.paul, opts);

  dyn.BeforeOutEdgeChange(bg.paul);
  ASSERT_TRUE(bg.g.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  dyn.AfterOutEdgeChange(bg.paul);

  std::vector<double> fresh = PowerIterationPpr(bg.g, bg.paul, opts);
  for (NodeId t = 0; t < bg.g.NumNodes(); ++t) {
    EXPECT_NEAR(dyn.Estimate(t), fresh[t], kTol) << "t=" << t;
  }
}

TEST(DynamicPushTest, HandlesChangesAwayFromSource) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-9;
  DynamicForwardPush<HinGraph> dyn(bg.g, bg.paul, opts);

  // Mutate Bob's neighborhood, two hops from Paul.
  dyn.BeforeOutEdgeChange(bg.bob);
  ASSERT_TRUE(bg.g.RemoveEdge(bg.bob, bg.harry_potter, bg.rated).ok());
  dyn.AfterOutEdgeChange(bg.bob);

  std::vector<double> fresh = PowerIterationPpr(bg.g, bg.paul, opts);
  for (NodeId t = 0; t < bg.g.NumNodes(); ++t) {
    EXPECT_NEAR(dyn.Estimate(t), fresh[t], kTol) << "t=" << t;
  }
}

TEST(DynamicPushTest, SurvivesLongRandomEditSequence) {
  Rng rng(31337);
  test::RandomHin rh = test::MakeRandomHin(rng, 5, 20, 3, 6);
  PprOptions opts;
  opts.epsilon = 1e-9;
  NodeId source = rh.users[0];
  DynamicForwardPush<HinGraph> dyn(rh.g, source, opts);

  for (int step = 0; step < 40; ++step) {
    NodeId src = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
    dyn.BeforeOutEdgeChange(src);
    bool mutated;
    if (rh.g.HasEdge(src, dst, rh.rated)) {
      mutated = rh.g.RemoveEdge(src, dst, rh.rated).ok();
    } else {
      mutated = rh.g.AddEdge(src, dst, rh.rated, 1.0).ok();
    }
    dyn.AfterOutEdgeChange(src);
    ASSERT_TRUE(mutated);
  }

  std::vector<double> fresh = PowerIterationPpr(rh.g, source, opts);
  for (NodeId t = 0; t < rh.g.NumNodes(); ++t) {
    EXPECT_NEAR(dyn.Estimate(t), fresh[t], 1e-4) << "t=" << t;
  }
  EXPECT_LT(dyn.AbsResidualMass(), 1.0);
}

// `residual_mass` is maintained incrementally (one float add per repair
// delta), so each repair can contribute a rounding error. Over thousands of
// repairs the accumulated drift against the ground truth (a scan of the
// residual vector) must stay negligible — the periodic resync inside
// AfterOutEdgeChange re-derives the mass every
// kResidualMassResyncInterval repairs, so at any point the drift is at
// most one interval's worth of roundings.
TEST(DynamicPushTest, ResidualMassDriftBoundedOverThousandsOfRepairs) {
  for (PushEngine engine : {PushEngine::kKernel, PushEngine::kFast}) {
    test::BookGraph bg = test::MakeBookGraph();
    PprOptions opts;
    opts.epsilon = 1e-8;
    opts.engine = engine;
    PushWorkspace ws;
    DynamicForwardPush<HinGraph> dyn(bg.g, bg.paul, opts, &ws);

    const uint64_t resyncs_before =
        obs::Registry::Global().GetCounter("ppr.dyn.resyncs").Value();
    // 1500 remove/re-add cycles = 3000 repairs: enough to cross the
    // 1024-repair resync interval at least twice.
    for (int cycle = 0; cycle < 1500; ++cycle) {
      dyn.BeforeOutEdgeChange(bg.paul);
      ASSERT_TRUE(bg.g.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
      dyn.AfterOutEdgeChange(bg.paul);
      dyn.BeforeOutEdgeChange(bg.paul);
      ASSERT_TRUE(bg.g.AddEdge(bg.paul, bg.candide, bg.rated, 1.0).ok());
      dyn.AfterOutEdgeChange(bg.paul);
    }
    const uint64_t resyncs =
        obs::Registry::Global().GetCounter("ppr.dyn.resyncs").Value() -
        resyncs_before;
    EXPECT_GE(resyncs, 2u) << "periodic resync did not trigger";

    // Whatever accumulated since the last automatic resync is at most one
    // interval of float roundings — far below the push tolerance.
    double drift = dyn.ResyncResidualMass();
    EXPECT_LT(std::abs(drift), 1e-9) << "engine "
                                     << static_cast<int>(engine);

    // After a resync the incremental mass IS the scan, bitwise.
    double scan = 0.0;
    for (double r : dyn.Residuals()) scan += r;
    EXPECT_EQ(dyn.State().residual_mass, scan);

    // The state itself is still correct (the graph is back to baseline).
    std::vector<double> fresh = PowerIterationPpr(bg.g, bg.paul, opts);
    for (NodeId t = 0; t < bg.g.NumNodes(); ++t) {
      EXPECT_NEAR(dyn.Estimate(t), fresh[t], kTol) << "t=" << t;
    }
  }
}

TEST(DynamicPushTest, NodeBecomingDanglingAndBack) {
  HinGraph g;
  graph::EdgeTypeId t = g.RegisterEdgeType("e");
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  NodeId c = g.AddNode("n");
  ASSERT_TRUE(g.AddEdge(a, b, t).ok());
  ASSERT_TRUE(g.AddEdge(b, c, t).ok());

  PprOptions opts;
  opts.epsilon = 1e-10;
  DynamicForwardPush<HinGraph> dyn(g, a, opts);

  // b loses its only out-edge -> becomes dangling.
  dyn.BeforeOutEdgeChange(b);
  ASSERT_TRUE(g.RemoveEdge(b, c, t).ok());
  dyn.AfterOutEdgeChange(b);
  std::vector<double> fresh = PowerIterationPpr(g, a, opts);
  for (NodeId x = 0; x < g.NumNodes(); ++x) {
    EXPECT_NEAR(dyn.Estimate(x), fresh[x], kTol);
  }

  // ... and gains it back.
  dyn.BeforeOutEdgeChange(b);
  ASSERT_TRUE(g.AddEdge(b, c, t).ok());
  dyn.AfterOutEdgeChange(b);
  fresh = PowerIterationPpr(g, a, opts);
  for (NodeId x = 0; x < g.NumNodes(); ++x) {
    EXPECT_NEAR(dyn.Estimate(x), fresh[x], kTol);
  }
}

}  // namespace
}  // namespace emigre::ppr
