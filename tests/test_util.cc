#include "test_util.h"

#include <cstdlib>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace emigre::test {

BookGraph MakeBookGraph() {
  BookGraph bg;
  graph::HinGraph& g = bg.g;
  bg.user_type = g.RegisterNodeType("user");
  bg.item_type = g.RegisterNodeType("item");
  bg.category_type = g.RegisterNodeType("category");
  bg.rated = g.RegisterEdgeType("rated");
  bg.follows = g.RegisterEdgeType("follows");
  bg.belongs_to = g.RegisterEdgeType("belongs-to");

  bg.paul = g.AddNode(bg.user_type, "Paul");
  bg.alice = g.AddNode(bg.user_type, "Alice");
  bg.bob = g.AddNode(bg.user_type, "Bob");

  bg.harry_potter = g.AddNode(bg.item_type, "Harry Potter");
  bg.lotr = g.AddNode(bg.item_type, "The Lord of the Rings");
  bg.python = g.AddNode(bg.item_type, "Python");
  bg.c_lang = g.AddNode(bg.item_type, "C");
  bg.candide = g.AddNode(bg.item_type, "Candide");
  bg.alchemist = g.AddNode(bg.item_type, "The Alchemist");

  bg.fantasy = g.AddNode(bg.category_type, "Fantasy");
  bg.programming = g.AddNode(bg.category_type, "Programming");
  bg.classics = g.AddNode(bg.category_type, "Classics");

  auto rated = [&](graph::NodeId u, graph::NodeId i) {
    g.AddBidirectional(u, i, bg.rated).CheckOK();
  };
  auto belongs = [&](graph::NodeId i, graph::NodeId c) {
    g.AddBidirectional(i, c, bg.belongs_to).CheckOK();
  };

  belongs(bg.harry_potter, bg.fantasy);
  belongs(bg.lotr, bg.fantasy);
  belongs(bg.python, bg.programming);
  belongs(bg.c_lang, bg.programming);
  belongs(bg.candide, bg.classics);
  belongs(bg.alchemist, bg.classics);

  rated(bg.alice, bg.harry_potter);
  rated(bg.alice, bg.lotr);
  rated(bg.alice, bg.candide);
  rated(bg.bob, bg.python);
  rated(bg.bob, bg.c_lang);
  rated(bg.bob, bg.harry_potter);
  rated(bg.paul, bg.candide);
  rated(bg.paul, bg.c_lang);

  // Social edges are directed (follower -> followed), as in the paper's
  // modeling discussion (§3).
  g.AddEdge(bg.paul, bg.alice, bg.follows).CheckOK();
  g.AddEdge(bg.paul, bg.bob, bg.follows).CheckOK();

  return bg;
}

explain::EmigreOptions MakeBookOptions(const BookGraph& bg) {
  explain::EmigreOptions opts;
  opts.rec.item_type = bg.item_type;
  opts.allowed_edge_types = {bg.rated};
  opts.add_edge_type = bg.rated;
  // Tiny graph: relaxed push epsilon is plenty and keeps tests fast.
  opts.rec.ppr.epsilon = 1e-9;
  return opts;
}

RandomHin MakeRandomHin(Rng& rng, size_t num_users, size_t num_items,
                        size_t num_categories, size_t actions_per_user) {
  RandomHin rh;
  graph::HinGraph& g = rh.g;
  rh.user_type = g.RegisterNodeType("user");
  rh.item_type = g.RegisterNodeType("item");
  rh.category_type = g.RegisterNodeType("category");
  rh.rated = g.RegisterEdgeType("rated");
  rh.belongs_to = g.RegisterEdgeType("belongs-to");

  for (size_t u = 0; u < num_users; ++u) {
    rh.users.push_back(g.AddNode(rh.user_type, StrFormat("u%zu", u)));
  }
  for (size_t i = 0; i < num_items; ++i) {
    rh.items.push_back(g.AddNode(rh.item_type, StrFormat("i%zu", i)));
  }
  std::vector<graph::NodeId> cats;
  for (size_t c = 0; c < num_categories; ++c) {
    cats.push_back(g.AddNode(rh.category_type, StrFormat("c%zu", c)));
  }
  for (size_t i = 0; i < num_items; ++i) {
    g.AddBidirectional(rh.items[i], cats[rng.NextBounded(num_categories)],
                       rh.belongs_to)
        .CheckOK();
  }
  for (graph::NodeId u : rh.users) {
    std::unordered_set<graph::NodeId> seen;
    for (size_t a = 0; a < actions_per_user; ++a) {
      graph::NodeId item = rh.items[rng.NextBounded(num_items)];
      if (!seen.insert(item).second) continue;
      g.AddBidirectional(u, item, rh.rated).CheckOK();
    }
  }
  return rh;
}

explain::EmigreOptions MakeRandomHinOptions(const RandomHin& rh) {
  explain::EmigreOptions opts;
  opts.rec.item_type = rh.item_type;
  opts.allowed_edge_types = {rh.rated};
  opts.add_edge_type = rh.rated;
  opts.rec.ppr.epsilon = 1e-8;
  return opts;
}

ScenarioFixture MakeAddFriendlyCase() {
  ScenarioFixture f;
  graph::HinGraph& g = f.g;
  graph::NodeTypeId user_t = g.RegisterNodeType("user");
  graph::NodeTypeId item_t = g.RegisterNodeType("item");
  graph::NodeTypeId cat_t = g.RegisterNodeType("category");
  graph::EdgeTypeId rated = g.RegisterEdgeType("rated");
  graph::EdgeTypeId belongs = g.RegisterEdgeType("belongs-to");

  graph::NodeId paul = g.AddNode(user_t, "Paul");
  graph::NodeId mary = g.AddNode(user_t, "Mary");
  graph::NodeId dave = g.AddNode(user_t, "Dave");
  // W first so it wins deterministic id tie-breaks among zero-score items.
  graph::NodeId w = g.AddNode(item_t, "W");
  graph::NodeId a = g.AddNode(item_t, "A");
  graph::NodeId b = g.AddNode(item_t, "B");
  graph::NodeId x = g.AddNode(item_t, "X");
  graph::NodeId c = g.AddNode(item_t, "C");
  graph::NodeId alpha = g.AddNode(cat_t, "Alpha");
  graph::NodeId beta = g.AddNode(cat_t, "Beta");

  auto rate = [&](graph::NodeId u, graph::NodeId i) {
    g.AddBidirectional(u, i, rated).CheckOK();
  };
  g.AddBidirectional(a, alpha, belongs).CheckOK();
  g.AddBidirectional(b, alpha, belongs).CheckOK();
  g.AddBidirectional(c, alpha, belongs).CheckOK();
  g.AddBidirectional(x, beta, belongs).CheckOK();
  g.AddBidirectional(w, beta, belongs).CheckOK();
  // Mary carries the Alpha cluster (diluted across three items); Dave
  // carries the Beta cluster tightly (X and W only).
  rate(mary, a);
  rate(mary, b);
  rate(mary, c);
  rate(dave, x);
  rate(dave, w);
  rate(paul, a);  // Paul's lone action: the Alpha side recommends B/C.

  f.opts = explain::EmigreOptions{};
  f.opts.rec.item_type = item_t;
  f.opts.allowed_edge_types = {rated};
  f.opts.add_edge_type = rated;
  f.opts.rec.ppr.epsilon = 1e-9;
  f.user = paul;
  f.wni = w;  // promoted by adding (Paul, X)
  return f;
}

ScenarioFixture MakeRemoveFriendlyCase() {
  ScenarioFixture f;
  graph::HinGraph& g = f.g;
  graph::NodeTypeId user_t = g.RegisterNodeType("user");
  graph::NodeTypeId item_t = g.RegisterNodeType("item");
  graph::EdgeTypeId rated = g.RegisterEdgeType("rated");

  graph::NodeId paul = g.AddNode(user_t, "Paul");
  graph::NodeId mary = g.AddNode(user_t, "Mary");
  graph::NodeId dave = g.AddNode(user_t, "Dave");
  graph::NodeId w = g.AddNode(item_t, "W");
  graph::NodeId a = g.AddNode(item_t, "A");
  graph::NodeId b = g.AddNode(item_t, "B");
  graph::NodeId d = g.AddNode(item_t, "D");
  graph::NodeId c2 = g.AddNode(item_t, "C2");

  auto rate = [&](graph::NodeId u, graph::NodeId i) {
    g.AddBidirectional(u, i, rated).CheckOK();
  };
  // W reaches Paul only through A (diluted by Mary's three ratings); the
  // recommendation B reaches him through D (Dave rates only D and B, a
  // tight conduit). Removing (Paul, D) starves B and W takes the top.
  rate(mary, a);
  rate(mary, w);
  rate(mary, c2);
  rate(dave, d);
  rate(dave, b);
  rate(paul, a);
  rate(paul, d);

  f.opts = explain::EmigreOptions{};
  f.opts.rec.item_type = item_t;
  f.opts.allowed_edge_types = {rated};
  f.opts.add_edge_type = rated;
  f.opts.rec.ppr.epsilon = 1e-9;
  f.user = paul;
  f.wni = w;
  return f;
}

std::string MakeTempDir(const std::string& prefix) {
  std::string tmpl = "/tmp/" + prefix + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = mkdtemp(buf.data());
  EMIGRE_CHECK(dir != nullptr) << "mkdtemp failed for " << tmpl;
  return std::string(dir);
}

}  // namespace emigre::test
