// Tests for the debug invariant validators (src/check/). Positive paths run
// each validator against healthy structures; negative paths corrupt a
// graph view, push state, overlay view, or explanation on purpose and
// assert the validator reports the violation with an actionable message.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/check_level.h"
#include "check/invariants.h"
#include "check/selfcheck.h"
#include "explain/emigre.h"
#include "graph/overlay.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "ppr/dynamic.h"
#include "ppr/forward_push.h"
#include "ppr/reverse_push.h"
#include "test_util.h"

namespace emigre {
namespace {

using graph::EdgeTypeId;
using graph::NodeId;
using graph::NodeTypeId;

// --- Corrupting adapter views -----------------------------------------------
//
// HinGraph keeps its internals private and its public API keeps them
// consistent, so corruption is injected through GraphLike wrapper views
// that forward to a healthy graph while lying about one detail.

/// Hides one out-edge (src -> dst, first match) from ForEachOutEdge and
/// subtracts its weight from OutWeight, leaving the mirroring in-edge
/// visible: a pure mirror-symmetry violation.
struct MirrorCorruptingView {
  const graph::HinGraph* g;
  NodeId src;
  NodeId dst;

  size_t NumNodes() const { return g->NumNodes(); }
  size_t OutDegree(NodeId n) const {
    return g->OutDegree(n) - (n == src ? 1 : 0);
  }
  NodeTypeId NodeType(NodeId n) const { return g->NodeType(n); }
  double OutWeight(NodeId n) const {
    double w = g->OutWeight(n);
    if (n == src) {
      bool first = true;
      g->ForEachOutEdge(n, [&](NodeId v, EdgeTypeId, double ew) {
        if (v == dst && first) {
          first = false;
          w -= ew;
        }
      });
    }
    return w;
  }
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    bool hidden = false;
    g->ForEachOutEdge(n, [&](NodeId v, EdgeTypeId t, double w) {
      if (n == src && v == dst && !hidden) {
        hidden = true;
        return;
      }
      fn(v, t, w);
    });
  }
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    g->ForEachInEdge(n, std::forward<F>(fn));
  }
};

/// Reports one edge with a negated weight.
struct NegativeWeightView {
  const graph::HinGraph* g;
  NodeId src;
  NodeId dst;

  size_t NumNodes() const { return g->NumNodes(); }
  size_t OutDegree(NodeId n) const { return g->OutDegree(n); }
  NodeTypeId NodeType(NodeId n) const { return g->NodeType(n); }
  double OutWeight(NodeId n) const { return g->OutWeight(n); }
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    g->ForEachOutEdge(n, [&](NodeId v, EdgeTypeId t, double w) {
      fn(v, t, n == src && v == dst ? -w : w);
    });
  }
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    g->ForEachInEdge(n, std::forward<F>(fn));
  }
};

/// Inflates the cached OutWeight of one node without touching its edges.
struct OutWeightCorruptingView {
  const graph::HinGraph* g;
  NodeId node;

  size_t NumNodes() const { return g->NumNodes(); }
  size_t OutDegree(NodeId n) const { return g->OutDegree(n); }
  NodeTypeId NodeType(NodeId n) const { return g->NodeType(n); }
  double OutWeight(NodeId n) const {
    return g->OutWeight(n) + (n == node ? 0.5 : 0.0);
  }
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    g->ForEachOutEdge(n, std::forward<F>(fn));
  }
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    g->ForEachInEdge(n, std::forward<F>(fn));
  }
};

/// Wraps a GraphOverlay but hides the first in-edge of one node — an
/// out/in view desync, the classic overlay-maintenance bug.
struct InEdgeHidingOverlay {
  const graph::GraphOverlay* o;
  NodeId victim;

  const graph::HinGraph& base() const { return o->base(); }
  size_t NumNodes() const { return o->NumNodes(); }
  size_t OutDegree(NodeId n) const { return o->OutDegree(n); }
  NodeTypeId NodeType(NodeId n) const { return o->NodeType(n); }
  double OutWeight(NodeId n) const { return o->OutWeight(n); }
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    o->ForEachOutEdge(n, std::forward<F>(fn));
  }
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    bool hidden = false;
    o->ForEachInEdge(n, [&](NodeId s, EdgeTypeId t, double w) {
      if (n == victim && !hidden) {
        hidden = true;
        return;
      }
      fn(s, t, w);
    });
  }
};

// --- ValidateGraph -----------------------------------------------------------

TEST(ValidateGraphTest, HealthyBookGraphPasses) {
  test::BookGraph bg = test::MakeBookGraph();
  EXPECT_TRUE(check::ValidateGraph(bg.g).ok());
}

TEST(ValidateGraphTest, HealthyRandomHinPasses) {
  Rng rng(7);
  test::RandomHin rh = test::MakeRandomHin(rng, 12, 40, 4, 6);
  EXPECT_TRUE(check::ValidateGraph(rh.g).ok());
}

TEST(ValidateGraphTest, DetectsMirrorAsymmetry) {
  test::BookGraph bg = test::MakeBookGraph();
  MirrorCorruptingView view{&bg.g, bg.paul, bg.candide};
  Status st = check::ValidateGraphView(view);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mirroring"), std::string::npos)
      << st.message();
}

TEST(ValidateGraphTest, DetectsNegativeWeight) {
  test::BookGraph bg = test::MakeBookGraph();
  NegativeWeightView view{&bg.g, bg.paul, bg.candide};
  Status st = check::ValidateGraphView(view);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-positive"), std::string::npos)
      << st.message();
}

TEST(ValidateGraphTest, DetectsStaleOutWeight) {
  test::BookGraph bg = test::MakeBookGraph();
  OutWeightCorruptingView view{&bg.g, bg.paul};
  Status st = check::ValidateGraphView(view);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("OutWeight"), std::string::npos)
      << st.message();
}

// --- ValidatePprInvariant (Eq. 3 / Eq. 4) ------------------------------------

class PprInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    rh_ = test::MakeRandomHin(rng, 10, 30, 3, 5);
  }
  test::RandomHin rh_;
  ppr::PprOptions ppr_opts_;
};

TEST_F(PprInvariantTest, ForwardPushStateSatisfiesEq3) {
  for (NodeId s : {rh_.users[0], rh_.users[3], rh_.items[0]}) {
    ppr::PushResult state = ppr::ForwardPush(rh_.g, s, ppr_opts_);
    EXPECT_TRUE(
        check::ValidateForwardPushInvariant(rh_.g, s, state, ppr_opts_).ok())
        << "source " << s;
  }
}

TEST_F(PprInvariantTest, ReversePushStateSatisfiesEq4) {
  for (NodeId t : {rh_.items[1], rh_.items[5]}) {
    ppr::PushResult state = ppr::ReversePush(rh_.g, t, ppr_opts_);
    EXPECT_TRUE(
        check::ValidateReversePushInvariant(rh_.g, t, state, ppr_opts_).ok())
        << "target " << t;
  }
}

TEST_F(PprInvariantTest, HoldsAfterDynamicEdgeUpdates) {
  graph::HinGraph g = rh_.g;
  NodeId source = rh_.users[0];
  ppr::DynamicForwardPush<graph::HinGraph> dyn(g, source, ppr_opts_);

  // Remove, then re-add, the user's first action; the repaired state must
  // satisfy Eq. 3 on the *current* graph after every update ([38]).
  ASSERT_GT(g.OutDegree(source), 0u);
  graph::Edge e = g.OutEdges(source)[0];
  dyn.BeforeOutEdgeChange(source);
  g.RemoveEdge(source, e.node, e.type).CheckOK();
  dyn.AfterOutEdgeChange(source);
  ppr::PushResult removed{dyn.Estimates(), dyn.Residuals()};
  EXPECT_TRUE(
      check::ValidateForwardPushInvariant(g, source, removed, ppr_opts_).ok());

  dyn.BeforeOutEdgeChange(source);
  g.AddEdge(source, e.node, e.type, e.weight).CheckOK();
  dyn.AfterOutEdgeChange(source);
  ppr::PushResult readded{dyn.Estimates(), dyn.Residuals()};
  EXPECT_TRUE(
      check::ValidateForwardPushInvariant(g, source, readded, ppr_opts_).ok());
}

TEST_F(PprInvariantTest, DetectsPerturbedForwardResidual) {
  NodeId s = rh_.users[1];
  ppr::PushResult state = ppr::ForwardPush(rh_.g, s, ppr_opts_);
  state.residual[rh_.items[2]] += 1e-3;
  Status st = check::ValidateForwardPushInvariant(rh_.g, s, state, ppr_opts_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Eq. 3"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find(std::to_string(rh_.items[2])),
            std::string::npos)
      << st.message();
}

TEST_F(PprInvariantTest, DetectsPerturbedForwardEstimate) {
  NodeId s = rh_.users[1];
  ppr::PushResult state = ppr::ForwardPush(rh_.g, s, ppr_opts_);
  state.estimate[s] *= 1.01;
  EXPECT_FALSE(
      check::ValidateForwardPushInvariant(rh_.g, s, state, ppr_opts_).ok());
}

TEST_F(PprInvariantTest, DetectsPerturbedReverseEstimate) {
  NodeId t = rh_.items[0];
  ppr::PushResult state = ppr::ReversePush(rh_.g, t, ppr_opts_);
  state.estimate[t] += 1e-3;
  Status st = check::ValidateReversePushInvariant(rh_.g, t, state, ppr_opts_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Eq. 4"), std::string::npos) << st.message();
}

TEST_F(PprInvariantTest, DetectsMisSizedState) {
  ppr::PushResult state;  // empty vectors
  EXPECT_FALSE(check::ValidateForwardPushInvariant(rh_.g, rh_.users[0], state,
                                                   ppr_opts_)
                   .ok());
  EXPECT_FALSE(check::ValidateReversePushInvariant(rh_.g, rh_.items[0], state,
                                                   ppr_opts_)
                   .ok());
}

// --- ValidateOverlayEquivalence ----------------------------------------------

TEST(ValidateOverlayTest, EditedOverlayMatchesMaterializedCopy) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay overlay(bg.g);
  overlay.RemoveEdge(bg.paul, bg.candide, bg.rated).CheckOK();
  overlay.AddEdge(bg.paul, bg.harry_potter, bg.rated, 1.0).CheckOK();
  overlay.SetWeight(bg.alice, bg.lotr, bg.rated, 2.5).CheckOK();
  std::vector<NodeId> sources{bg.paul, bg.alice, bg.bob};
  EXPECT_TRUE(check::ValidateOverlayEquivalence(overlay, sources).ok());
}

TEST(ValidateOverlayTest, CleanOverlayMatchesBase) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay overlay(bg.g);
  std::vector<NodeId> sources{bg.paul};
  EXPECT_TRUE(check::ValidateOverlayEquivalence(overlay, sources).ok());
}

TEST(ValidateOverlayTest, DetectsOutInDesync) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay overlay(bg.g);
  overlay.RemoveEdge(bg.paul, bg.candide, bg.rated).CheckOK();
  InEdgeHidingOverlay corrupted{&overlay, bg.lotr};
  std::vector<NodeId> sources{bg.paul};
  Status st = check::ValidateOverlayEquivalence(corrupted, sources);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("in-edge"), std::string::npos) << st.message();
}

// --- ValidateExplanation -----------------------------------------------------

TEST(ValidateExplanationTest, VerifiedRemoveExplanationPasses) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  explain::Emigre engine(f.g, f.opts);
  Result<explain::Explanation> r =
      engine.Explain(explain::WhyNotQuestion{f.user, f.wni},
                     explain::Mode::kRemove,
                     explain::Heuristic::kIncremental);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found);
  ASSERT_TRUE(r->verified);
  EXPECT_TRUE(check::ValidateExplanation(
                  f.g, explain::WhyNotQuestion{f.user, f.wni}, r.value(),
                  f.opts)
                  .ok());
}

TEST(ValidateExplanationTest, NotFoundIsVacuouslyValid) {
  test::BookGraph bg = test::MakeBookGraph();
  explain::Explanation e;  // found == false
  EXPECT_TRUE(check::ValidateExplanation(bg.g,
                                         explain::WhyNotQuestion{bg.paul,
                                                                 bg.candide},
                                         e, test::MakeBookOptions(bg))
                  .ok());
}

TEST(ValidateExplanationTest, DetectsNonFlippingExplanation) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  explain::Explanation e;
  e.mode = explain::Mode::kRemove;
  e.found = true;
  e.verified = true;  // lies: an empty edit set cannot flip the rec
  Status st = check::ValidateExplanation(
      f.g, explain::WhyNotQuestion{f.user, f.wni}, e, f.opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("top recommendation"), std::string::npos)
      << st.message();
}

TEST(ValidateExplanationTest, DetectsUnreplayableEdit) {
  test::BookGraph bg = test::MakeBookGraph();
  explain::Explanation e;
  e.mode = explain::Mode::kRemove;
  e.found = true;
  // Removing a non-existent edge cannot be replayed.
  e.edges.push_back(graph::EdgeRef{bg.paul, bg.harry_potter, bg.rated});
  Status st = check::ValidateExplanation(
      bg.g, explain::WhyNotQuestion{bg.paul, bg.alchemist}, e,
      test::MakeBookOptions(bg));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("replaying"), std::string::npos)
      << st.message();
}

TEST(ValidateExplanationInSpaceTest, DetectsForeignEdge) {
  test::BookGraph bg = test::MakeBookGraph();
  explain::SearchSpace space;
  space.actions.push_back(explain::CandidateAction{
      graph::EdgeRef{bg.paul, bg.harry_potter, bg.rated}, 1.0});
  explain::Explanation e;
  e.found = true;
  e.edges.push_back(graph::EdgeRef{bg.alice, bg.lotr, bg.rated});
  Status st = check::ValidateExplanationInSpace(space, e,
                                                test::MakeBookOptions(bg));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a member"), std::string::npos)
      << st.message();

  e.edges[0] = space.actions[0].edge;
  EXPECT_TRUE(check::ValidateExplanationInSpace(space, e,
                                                test::MakeBookOptions(bg))
                  .ok());
}

// --- RunSelfCheck ------------------------------------------------------------

TEST(SelfCheckTest, PassesOnHealthyGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  check::SelfCheckOptions sc;
  Result<check::SelfCheckReport> report =
      check::RunSelfCheck(bg.g, test::MakeBookOptions(bg), sc);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << [&] {
    std::string all;
    for (const auto& line : report->lines) all += line + "\n";
    return all;
  }();
  EXPECT_GE(report->checks_run, 5u);
  EXPECT_EQ(report->violations, 0u);
}

TEST(SelfCheckTest, LevelOffRunsNothing) {
  test::BookGraph bg = test::MakeBookGraph();
  check::SelfCheckOptions sc;
  sc.level = check::CheckLevel::kOff;
  Result<check::SelfCheckReport> report =
      check::RunSelfCheck(bg.g, test::MakeBookOptions(bg), sc);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checks_run, 0u);
}

TEST(SelfCheckTest, BasicLevelValidatesGraphOnly) {
  test::BookGraph bg = test::MakeBookGraph();
  check::SelfCheckOptions sc;
  sc.level = check::CheckLevel::kBasic;
  Result<check::SelfCheckReport> report =
      check::RunSelfCheck(bg.g, test::MakeBookOptions(bg), sc);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checks_run, 1u);
  EXPECT_TRUE(report->ok());
}

TEST(SelfCheckTest, RejectsEmptyGraph) {
  graph::HinGraph empty;
  explain::EmigreOptions opts;
  EXPECT_FALSE(check::RunSelfCheck(empty, opts).ok());
}

TEST(SelfCheckTest, RecordsPassFailCounters) {
  test::BookGraph bg = test::MakeBookGraph();
  obs::Counter& pass =
      obs::Registry::Global().GetCounter("check.graph.pass");
  obs::Counter& fail =
      obs::Registry::Global().GetCounter("check.graph.fail");
  uint64_t pass_before = pass.Value();
  uint64_t fail_before = fail.Value();

  check::ValidateGraph(bg.g).CheckOK();
  EXPECT_EQ(pass.Value(), pass_before + 1);

  MirrorCorruptingView view{&bg.g, bg.paul, bg.candide};
  Status ignored = check::ValidateGraphView(view);
  (void)ignored;  // outcome asserted via the failure counter below
  EXPECT_EQ(fail.Value(), fail_before + 1);
}

// --- CheckLevel plumbing -----------------------------------------------------

TEST(CheckLevelTest, NamesRoundTrip) {
  for (check::CheckLevel level :
       {check::CheckLevel::kOff, check::CheckLevel::kBasic,
        check::CheckLevel::kFull}) {
    check::CheckLevel parsed = check::CheckLevel::kOff;
    ASSERT_TRUE(check::CheckLevelFromName(check::CheckLevelName(level),
                                          &parsed));
    EXPECT_EQ(parsed, level);
  }
  check::CheckLevel parsed = check::CheckLevel::kOff;
  EXPECT_FALSE(check::CheckLevelFromName("bogus", &parsed));
}

TEST(CheckLevelTest, ShouldCheckRespectsBuildFlagAndLevel) {
  // In non-DCHECK builds every combination is false; with the flag on, the
  // configured level gates the required level.
  EXPECT_EQ(check::ShouldCheck(check::CheckLevel::kFull,
                               check::CheckLevel::kBasic),
            check::kDcheckInvariantsEnabled);
  EXPECT_FALSE(check::ShouldCheck(check::CheckLevel::kOff,
                                  check::CheckLevel::kBasic));
}

}  // namespace
}  // namespace emigre
