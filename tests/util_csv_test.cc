#include "util/csv.h"

#include <gtest/gtest.h>

#include <fstream>

#include "test_util.h"

namespace emigre {
namespace {

TEST(CsvTest, WriteReadRoundTrip) {
  std::string dir = test::MakeTempDir("csv");
  std::string path = dir + "/t.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.status().ok());
    ASSERT_TRUE(w.WriteRow({"a", "b", "c"}).ok());
    ASSERT_TRUE(w.WriteRow({"1", "2", "3"}).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  CsvReader r(path);
  ASSERT_TRUE(r.status().ok());
  std::vector<std::string> row;
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_FALSE(r.ReadRow(&row));
}

TEST(CsvTest, QuotingRoundTrip) {
  std::string dir = test::MakeTempDir("csv");
  std::string path = dir + "/q.csv";
  std::vector<std::string> tricky = {"comma,inside", "quote\"inside",
                                     "new\nline", "plain"};
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.WriteRow(tricky).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  CsvReader r(path);
  std::vector<std::string> row;
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, tricky);
  EXPECT_FALSE(r.ReadRow(&row));
}

TEST(CsvTest, EmptyFieldsSurvive) {
  std::string dir = test::MakeTempDir("csv");
  std::string path = dir + "/e.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.WriteRow({"", "x", ""}).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  CsvReader r(path);
  std::vector<std::string> row;
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, MissingFileReportsIOError) {
  CsvReader r("/nonexistent/dir/file.csv");
  EXPECT_TRUE(r.status().IsIOError());
  CsvWriter w("/nonexistent/dir/file.csv");
  EXPECT_TRUE(w.status().IsIOError());
}

// Regression: a file truncated inside a quoted field used to be returned
// as a valid final row, indistinguishable from a clean EOF.
TEST(CsvTest, UnterminatedQuoteReportsError) {
  std::string path = test::MakeTempDir("csv") + "/bad.csv";
  {
    std::ofstream f(path);
    f << "a,b\nx,\"cut off mid-quote";
  }
  CsvReader r(path);
  std::vector<std::string> row;
  ASSERT_TRUE(r.ReadRow(&row));  // the intact first row still parses
  EXPECT_FALSE(r.ReadRow(&row));
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

// The buffered reader splices physical lines back together when a quoted
// field embeds newlines, and reuses the caller's row vector without
// leftover fields from a previous (wider) row.
TEST(CsvTest, QuotedFieldSpanningLinesAndRowReuse) {
  std::string path = test::MakeTempDir("csv") + "/span.csv";
  {
    std::ofstream f(path);
    f << "a,\"line one\nline two\",c\r\n";  // CRLF terminator too
    f << "only,two\n";
  }
  CsvReader r(path);
  std::vector<std::string> row;
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "line one\nline two", "c"}));
  // The next row has fewer fields; the reused vector must shrink.
  ASSERT_TRUE(r.ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"only", "two"}));
  EXPECT_FALSE(r.ReadRow(&row));
  EXPECT_TRUE(r.status().ok());
}

TEST(ParseCsvLineTest, HandlesQuotes) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
}

TEST(ParseCsvLineTest, CustomDelimiter) {
  EXPECT_EQ(ParseCsvLine("a;b", ';'), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace emigre
