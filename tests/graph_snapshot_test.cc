// The emigre.csr.v1 mmap snapshot (docs/data_format.md): round trips
// against the HinGraph it was written from, byte-identical output from the
// streaming dataset->CSR converter, corruption robustness, and the engine
// grid proving explanations are identical on mmap-backed and heap-backed
// graphs.

#include "graph/csr_snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "data/amazon_lite.h"
#include "data/bin_io.h"
#include "data/dataset_to_csr.h"
#include "data/synthetic_amazon.h"
#include "explain/emigre.h"
#include "explain/options.h"
#include "fault/fault.h"
#include "graph/hin_graph.h"
#include "ppr/options.h"
#include "test_util.h"
#include "util/status.h"

namespace emigre::graph {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct Edge {
  NodeId dst;
  EdgeTypeId type;
  double w;
  bool operator==(const Edge& o) const {
    return dst == o.dst && type == o.type && w == o.w;
  }
};

template <typename G>
std::vector<Edge> OutEdges(const G& g, NodeId n) {
  std::vector<Edge> out;
  g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
    out.push_back({dst, t, w});
  });
  return out;
}

TEST(CsrSnapshotTest, RoundTripsTheBookGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  std::string path = test::MakeTempDir("snap") + "/book.csr";
  ASSERT_TRUE(WriteGraphSnapshot(bg.g, path).ok());
  ASSERT_TRUE(SniffCsrSnapshot(path));

  auto view = CsrSnapshotView::Load(path);
  ASSERT_TRUE(view.ok()) << view.status();
  ASSERT_EQ(view->NumNodes(), bg.g.NumNodes());
  ASSERT_EQ(view->NumEdges(), bg.g.NumEdges());
  ASSERT_EQ(view->NumNodeTypes(), bg.g.NumNodeTypes());
  for (NodeTypeId t = 0; t < bg.g.NumNodeTypes(); ++t) {
    EXPECT_EQ(view->NodeTypeName(t), bg.g.NodeTypeName(t));
  }
  for (NodeId n = 0; n < bg.g.NumNodes(); ++n) {
    EXPECT_EQ(view->NodeType(n), bg.g.NodeType(n));
    EXPECT_EQ(view->Label(n), bg.g.Label(n));
    // Adjacency must round-trip in list order, weights bit for bit.
    EXPECT_EQ(OutEdges(*view, n), OutEdges(bg.g, n)) << "node " << n;
  }
}

TEST(CsrSnapshotTest, StreamingConverterMatchesBuildRouteBytes) {
  data::SyntheticAmazonOptions gen;
  gen.num_users = 20;
  gen.num_items = 100;
  gen.num_categories = 6;
  gen.min_actions_per_user = 4;
  gen.max_actions_per_user = 10;
  gen.embedding_dim = 4;
  auto ds = data::GenerateSyntheticAmazon(gen);
  ASSERT_TRUE(ds.ok());

  std::string dir = test::MakeTempDir("snapconv");
  std::string bin = dir + "/ds.bin";
  ASSERT_TRUE(data::SaveDatasetBin(ds.value(), bin).ok());

  // Route A: the streaming two-pass converter (never materializes a graph).
  std::string converted = dir + "/converted.csr";
  auto stats = data::ConvertBinDatasetToCsrSnapshot(bin, converted);
  ASSERT_TRUE(stats.ok()) << stats.status();

  // Route B: BuildAmazonLite with the converter's semantics (no similarity
  // links, no neighborhood pruning) and the generic graph writer.
  data::AmazonLiteOptions lite_opts;
  lite_opts.max_similar_per_review = 0;
  lite_opts.neighborhood_hops = 0;
  auto lite = data::BuildAmazonLite(ds.value(), lite_opts);
  ASSERT_TRUE(lite.ok());
  std::string built = dir + "/built.csr";
  ASSERT_TRUE(WriteGraphSnapshot(lite->graph, built).ok());

  EXPECT_EQ(stats->num_nodes, lite->graph.NumNodes());
  EXPECT_EQ(stats->num_edges, lite->graph.NumEdges());
  EXPECT_EQ(ReadFileBytes(converted), ReadFileBytes(built));
}

TEST(CsrSnapshotTest, CorruptionSurfacesAsTypedErrors) {
  test::BookGraph bg = test::MakeBookGraph();
  std::string dir = test::MakeTempDir("snap");
  std::string path = dir + "/book.csr";
  ASSERT_TRUE(WriteGraphSnapshot(bg.g, path).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 4096u);

  {  // Bad magic.
    std::string bad = good;
    bad[0] = 'Z';
    WriteFileBytes(dir + "/magic.csr", bad);
    EXPECT_FALSE(SniffCsrSnapshot(dir + "/magic.csr"));
    auto v = CsrSnapshotView::Load(dir + "/magic.csr");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Truncation below the declared payload extent.
    WriteFileBytes(dir + "/trunc.csr", good.substr(0, good.size() / 2));
    auto v = CsrSnapshotView::Load(dir + "/trunc.csr");
    ASSERT_FALSE(v.ok());
    EXPECT_TRUE(v.status().code() == StatusCode::kIOError ||
                v.status().code() == StatusCode::kInvalidArgument)
        << v.status();
  }
  {  // Payload bit rot, caught by the opt-in checksum sweep.
    std::string bad = good;
    bad.back() = static_cast<char>(bad.back() ^ 0x10);
    WriteFileBytes(dir + "/bitrot.csr", bad);
    SnapshotLoadOptions verify;
    verify.verify_checksums = true;
    auto v = CsrSnapshotView::Load(dir + "/bitrot.csr", verify);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Garbage file.
    WriteFileBytes(dir + "/garbage.csr", "not a snapshot at all");
    auto v = CsrSnapshotView::Load(dir + "/garbage.csr");
    ASSERT_FALSE(v.ok());
    EXPECT_TRUE(v.status().code() == StatusCode::kIOError ||
                v.status().code() == StatusCode::kInvalidArgument)
        << v.status();
  }
}

TEST(CsrSnapshotTest, FaultSiteInjectsOnMap) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault sites compiled out";
  }
  test::BookGraph bg = test::MakeBookGraph();
  std::string path = test::MakeTempDir("snap") + "/book.csr";
  ASSERT_TRUE(WriteGraphSnapshot(bg.g, path).ok());

  auto& reg = fault::FaultRegistry::Global();
  reg.Reset();
  fault::FaultSpec spec;
  spec.site = "graph.snapshot.map";
  spec.nth = 1;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(reg.Arm(spec).ok());
  auto v = CsrSnapshotView::Load(path);
  reg.Reset();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIOError);
}

// The acceptance bar for the snapshot layer: every push engine produces the
// same explanation whether the graph lives on the heap (HinGraph) or behind
// the mmap (CsrSnapshotView).
TEST(CsrSnapshotTest, EngineGridAgreesOnMmapAndHeapBackings) {
  test::BookGraph bg = test::MakeBookGraph();
  std::string path = test::MakeTempDir("snap") + "/book.csr";
  ASSERT_TRUE(WriteGraphSnapshot(bg.g, path).ok());
  auto view = CsrSnapshotView::Load(path);
  ASSERT_TRUE(view.ok()) << view.status();

  explain::EmigreOptions base = test::MakeBookOptions(bg);
  base.deadline_seconds = 0.0;

  const std::vector<NodeId> wnis = {bg.lotr, bg.python, bg.candide,
                                    bg.alchemist};
  size_t found = 0;
  for (ppr::PushEngine engine :
       {ppr::PushEngine::kLegacy, ppr::PushEngine::kKernel,
        ppr::PushEngine::kFast}) {
    explain::EmigreOptions opts = base;
    opts.rec.ppr.engine = engine;
    explain::Emigre heap_engine(bg.g, opts);
    explain::EmigreT<CsrSnapshotView> mmap_engine(view.value(), opts);
    for (NodeId user : {bg.paul, bg.alice, bg.bob}) {
      for (NodeId wni : wnis) {
        for (explain::Mode mode :
             {explain::Mode::kRemove, explain::Mode::kAdd}) {
          explain::WhyNotQuestion q{user, wni};
          auto a = heap_engine.Explain(q, mode,
                                       explain::Heuristic::kExhaustive);
          auto b = mmap_engine.Explain(q, mode,
                                       explain::Heuristic::kExhaustive);
          ASSERT_EQ(a.ok(), b.ok())
              << "user " << user << " wni " << wni << " engine "
              << static_cast<int>(engine);
          if (!a.ok()) continue;
          EXPECT_EQ(a->found, b->found);
          EXPECT_EQ(a->edges, b->edges);
          EXPECT_EQ(a->new_rec, b->new_rec);
          EXPECT_EQ(a->failure, b->failure);
          if (a->found) ++found;
        }
      }
    }
  }
  // The grid must actually exercise successful explanations, not just
  // agree on failures.
  EXPECT_GT(found, 0u);
}

}  // namespace
}  // namespace emigre::graph
