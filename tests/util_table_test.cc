#include "util/table.h"

#include <gtest/gtest.h>

namespace emigre {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.AddRow({"alpha", "0.15"});
  t.AddRow({"epsilon", "2.7e-8"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.7e-8"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, RightAlignment) {
  TextTable t({"K", "V"});
  t.SetAlign(1, Align::kRight);
  t.AddRow({"x", "1"});
  t.AddRow({"y", "100"});
  std::string s = t.ToString();
  // "1" must be right-aligned under the 3-wide column: "  1".
  EXPECT_NE(s.find("x |   1"), std::string::npos);
  EXPECT_NE(s.find("y | 100"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadAndLongRowsTruncate) {
  TextTable t({"A", "B"});
  t.AddRow({"only"});
  t.AddRow({"x", "y", "dropped"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
  EXPECT_EQ(s.find("dropped"), std::string::npos);
}

TEST(TextTableTest, SeparatorEmitsRule) {
  TextTable t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string s = t.ToString();
  // Two rules: one under the header, one mid-table.
  size_t first = s.find("-\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(s.find("-\n", first + 1), std::string::npos);
}

TEST(BarChartTest, ScalesAndLabels) {
  std::string s =
      BarChart({"add_ex", "remove_ex"}, {75.0, 30.0}, 100.0, "%", 20);
  EXPECT_NE(s.find("add_ex"), std::string::npos);
  EXPECT_NE(s.find("75%"), std::string::npos);
  // 75% of 20 = 15 filled cells.
  EXPECT_NE(s.find("###############....."), std::string::npos);
}

TEST(BarChartTest, ClampsOverflow) {
  std::string s = BarChart({"x"}, {150.0}, 100.0, "", 10);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

TEST(BarChartTest, ZeroValue) {
  std::string s = BarChart({"x"}, {0.0}, 100.0, "", 10);
  EXPECT_NE(s.find(".........."), std::string::npos);
}

}  // namespace
}  // namespace emigre
