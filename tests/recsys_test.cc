#include "recsys/recommender.h"

#include <gtest/gtest.h>

#include "graph/overlay.h"
#include "ppr/power_iteration.h"
#include "recsys/recwalk.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::recsys {
namespace {

using graph::NodeId;

TEST(RecListTest, SortsByScoreThenId) {
  RecommendationList list({{5, 0.1}, {2, 0.5}, {9, 0.5}, {1, 0.0}});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list.at(0).item, 2u);  // 0.5, lower id first on tie
  EXPECT_EQ(list.at(1).item, 9u);
  EXPECT_EQ(list.at(2).item, 5u);
  EXPECT_EQ(list.at(3).item, 1u);
  EXPECT_EQ(list.Top(), 2u);
  EXPECT_EQ(list.RankOf(9), 1u);
  EXPECT_EQ(list.RankOf(42), list.size());
  EXPECT_TRUE(list.Contains(5));
  EXPECT_FALSE(list.Contains(42));
  EXPECT_DOUBLE_EQ(list.ScoreOf(2), 0.5);
  EXPECT_DOUBLE_EQ(list.ScoreOf(42), 0.0);
}

TEST(RecListTest, TopNTruncates) {
  RecommendationList list({{1, 0.3}, {2, 0.2}, {3, 0.1}});
  RecommendationList top2 = list.TopN(2);
  EXPECT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2.at(1).item, 2u);
  EXPECT_EQ(list.TopN(10).size(), 3u);
}

TEST(RecListTest, EmptyList) {
  RecommendationList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Top(), graph::kInvalidNode);
}

TEST(RecommenderTest, ExcludesInteractedAndNonItems) {
  test::BookGraph bg = test::MakeBookGraph();
  RecommenderOptions opts;
  opts.item_type = bg.item_type;
  RecommendationList list = RankItems(bg.g, bg.paul, opts);

  // Paul rated Candide and C: they must not appear.
  EXPECT_FALSE(list.Contains(bg.candide));
  EXPECT_FALSE(list.Contains(bg.c_lang));
  // Categories and users must not appear.
  EXPECT_FALSE(list.Contains(bg.fantasy));
  EXPECT_FALSE(list.Contains(bg.alice));
  // The four remaining books do.
  EXPECT_TRUE(list.Contains(bg.harry_potter));
  EXPECT_TRUE(list.Contains(bg.lotr));
  EXPECT_TRUE(list.Contains(bg.python));
  EXPECT_TRUE(list.Contains(bg.alchemist));
  EXPECT_EQ(list.size(), 4u);
}

TEST(RecommenderTest, ScoresMatchPowerIteration) {
  test::BookGraph bg = test::MakeBookGraph();
  RecommenderOptions opts;
  opts.item_type = bg.item_type;
  RecommendationList list = RankItems(bg.g, bg.paul, opts);
  std::vector<double> p = ppr::PowerIterationPpr(bg.g, bg.paul, opts.ppr);
  for (const ScoredItem& si : list.items()) {
    EXPECT_DOUBLE_EQ(si.score, p[si.item]);
  }
}

TEST(RecommenderTest, RecommendIsTopOfRanking) {
  test::BookGraph bg = test::MakeBookGraph();
  RecommenderOptions opts;
  opts.item_type = bg.item_type;
  EXPECT_EQ(Recommend(bg.g, bg.paul, opts),
            RankItems(bg.g, bg.paul, opts).Top());
}

TEST(RecommenderTest, DeterministicAcrossCalls) {
  test::BookGraph bg = test::MakeBookGraph();
  RecommenderOptions opts;
  opts.item_type = bg.item_type;
  RecommendationList a = RankItems(bg.g, bg.paul, opts);
  RecommendationList b = RankItems(bg.g, bg.paul, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).item, b.at(i).item);
  }
}

TEST(RecommenderTest, WorksOnOverlay) {
  test::BookGraph bg = test::MakeBookGraph();
  RecommenderOptions opts;
  opts.item_type = bg.item_type;
  graph::GraphOverlay o(bg.g);
  // Adding an edge to an item excludes it from the candidates.
  NodeId before = Recommend(o, bg.paul, opts);
  ASSERT_TRUE(o.AddEdge(bg.paul, before, bg.rated).ok());
  NodeId after = Recommend(o, bg.paul, opts);
  EXPECT_NE(after, before);
}

TEST(RecommenderTest, HasOutEdgeToHelper) {
  test::BookGraph bg = test::MakeBookGraph();
  EXPECT_TRUE(HasOutEdgeTo(bg.g, bg.paul, bg.candide));
  EXPECT_FALSE(HasOutEdgeTo(bg.g, bg.paul, bg.lotr));
  EXPECT_TRUE(IsCandidateItem(bg.g, bg.paul, bg.lotr, bg.item_type));
  EXPECT_FALSE(IsCandidateItem(bg.g, bg.paul, bg.candide, bg.item_type));
  EXPECT_FALSE(IsCandidateItem(bg.g, bg.paul, bg.fantasy, bg.item_type));
  EXPECT_FALSE(IsCandidateItem(bg.g, bg.paul, bg.paul, bg.item_type));
}

TEST(RecommenderTest, UserWithNoCandidatesGetsEmptyList) {
  graph::HinGraph g;
  graph::NodeTypeId user_type = g.RegisterNodeType("user");
  graph::NodeTypeId item_type = g.RegisterNodeType("item");
  graph::EdgeTypeId rated = g.RegisterEdgeType("rated");
  NodeId u = g.AddNode(user_type);
  NodeId i = g.AddNode(item_type);
  ASSERT_TRUE(g.AddEdge(u, i, rated).ok());
  RecommenderOptions opts;
  opts.item_type = item_type;
  EXPECT_TRUE(RankItems(g, u, opts).empty());
  EXPECT_EQ(Recommend(g, u, opts), graph::kInvalidNode);
}

// ---------------------------------------------------------------------------
// RecWalk
// ---------------------------------------------------------------------------

TEST(RecWalkTest, AddsSimilarityEdgesBetweenCoRatedItems) {
  test::BookGraph bg = test::MakeBookGraph();
  RecWalkOptions opts;
  opts.beta = 0.5;
  Result<graph::HinGraph> rw =
      BuildRecWalkGraph(bg.g, bg.item_type, bg.user_type, opts);
  ASSERT_TRUE(rw.ok()) << rw.status();
  const graph::HinGraph& g2 = rw.value();
  graph::EdgeTypeId sim = g2.FindEdgeType("similar-to");
  ASSERT_NE(sim, graph::kInvalidEdgeType);

  // Alice rated HP, LotR, Candide together -> HP and LotR are similar.
  EXPECT_TRUE(g2.HasEdge(bg.harry_potter, bg.lotr, sim));
  // Python and LotR share no user -> no similarity edge.
  EXPECT_FALSE(g2.HasEdge(bg.python, bg.lotr, sim));
}

TEST(RecWalkTest, BetaControlsMassSplit) {
  test::BookGraph bg = test::MakeBookGraph();
  RecWalkOptions opts;
  opts.beta = 0.7;
  opts.min_similarity = 0.0;
  Result<graph::HinGraph> rw =
      BuildRecWalkGraph(bg.g, bg.item_type, bg.user_type, opts);
  ASSERT_TRUE(rw.ok());
  const graph::HinGraph& g2 = rw.value();
  graph::EdgeTypeId sim = g2.FindEdgeType("similar-to");

  // For an item with similarity edges, the similarity block holds (1-beta)
  // of the total out-weight.
  double orig = 0.0;
  double similar = 0.0;
  for (const graph::Edge& e : g2.OutEdges(bg.harry_potter)) {
    if (e.type == sim) {
      similar += e.weight;
    } else {
      orig += e.weight;
    }
  }
  ASSERT_GT(similar, 0.0);
  double total = orig + similar;
  EXPECT_NEAR(orig / total, opts.beta, 1e-9);
  EXPECT_NEAR(similar / total, 1.0 - opts.beta, 1e-9);
}

TEST(RecWalkTest, BetaOneKeepsPlainWalk) {
  test::BookGraph bg = test::MakeBookGraph();
  RecWalkOptions opts;
  opts.beta = 1.0;
  Result<graph::HinGraph> rw =
      BuildRecWalkGraph(bg.g, bg.item_type, bg.user_type, opts);
  ASSERT_TRUE(rw.ok());
  // Similarity edges carry zero budget -> none added.
  graph::EdgeTypeId sim = rw->FindEdgeType("similar-to");
  for (NodeId n = 0; n < rw->NumNodes(); ++n) {
    for (const graph::Edge& e : rw->OutEdges(n)) {
      EXPECT_NE(e.type, sim);
    }
  }
}

TEST(RecWalkTest, RejectsBadBeta) {
  test::BookGraph bg = test::MakeBookGraph();
  RecWalkOptions opts;
  opts.beta = 1.5;
  EXPECT_TRUE(BuildRecWalkGraph(bg.g, bg.item_type, bg.user_type, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(RecWalkTest, PprOnRecWalkGraphStillNormalizes) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<graph::HinGraph> rw =
      BuildRecWalkGraph(bg.g, bg.item_type, bg.user_type, RecWalkOptions{});
  ASSERT_TRUE(rw.ok());
  std::vector<double> p =
      ppr::PowerIterationPpr(rw.value(), bg.paul, ppr::PprOptions{});
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST(RecWalkTest, TopKSimilarCapRespected) {
  Rng rng(9);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 15, 2, 10);
  RecWalkOptions opts;
  opts.top_k_similar = 2;
  opts.min_similarity = 0.0;
  Result<graph::HinGraph> rw =
      BuildRecWalkGraph(rh.g, rh.item_type, rh.user_type, opts);
  ASSERT_TRUE(rw.ok());
  graph::EdgeTypeId sim = rw->FindEdgeType("similar-to");
  for (NodeId item : rh.items) {
    size_t sim_degree = 0;
    for (const graph::Edge& e : rw->OutEdges(item)) {
      if (e.type == sim) ++sim_degree;
    }
    EXPECT_LE(sim_degree, 2u) << "item " << item;
  }
}

}  // namespace
}  // namespace emigre::recsys
