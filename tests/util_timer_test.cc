// Tests for util/timer.h, in particular the Deadline copy/Start semantics:
// a Deadline constructed early (e.g. inside options) and copied into the
// worker must be re-armed with Start() or it silently counts setup time.

#include "util/timer.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "gtest/gtest.h"

namespace emigre {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(WallTimerTest, ElapsedGrowsMonotonically) {
  WallTimer timer;
  double t0 = timer.ElapsedSeconds();
  SleepMs(5);
  double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GE(timer.ElapsedMicros(), 5000);
}

TEST(WallTimerTest, ResetRestartsTheClock) {
  WallTimer timer;
  SleepMs(10);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.010);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline unlimited;
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_DOUBLE_EQ(unlimited.BudgetSeconds(), 0.0);
  EXPECT_TRUE(std::isinf(unlimited.RemainingSeconds()));
  Deadline negative(-1.0);
  EXPECT_FALSE(negative.Expired());
  EXPECT_TRUE(std::isinf(negative.RemainingSeconds()));
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d(0.02);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 0.0);
  SleepMs(30);
  EXPECT_TRUE(d.Expired());
  EXPECT_DOUBLE_EQ(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, StartReArmsAnExpiredDeadline) {
  Deadline d(0.02);
  SleepMs(30);
  ASSERT_TRUE(d.Expired());
  d.Start();
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 0.0);
}

// Regression: a copied Deadline inherits the source's start time. Without a
// Start() at the point where the guarded work begins, setup time between
// construction and use is silently charged against the budget.
TEST(DeadlineTest, CopiedDeadlineKeepsOldStartUntilStarted) {
  Deadline original(0.02);
  SleepMs(30);  // "setup" happening after the budget was constructed
  Deadline copy = original;
  EXPECT_TRUE(copy.Expired()) << "copy shares the construction-time start";
  copy.Start();
  EXPECT_FALSE(copy.Expired()) << "Start() must re-arm the copied budget";
}

TEST(DeadlineTest, RemainingSecondsShrinks) {
  Deadline d(1.0);
  double r0 = d.RemainingSeconds();
  SleepMs(10);
  double r1 = d.RemainingSeconds();
  EXPECT_LE(r1, r0);
  EXPECT_LE(r0, 1.0);
}

}  // namespace
}  // namespace emigre
