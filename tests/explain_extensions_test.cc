// Tests for the future-work extensions: weight-based explanations (§7),
// group/category-granularity Why-Not questions (§4), the overlay weight
// override they build on, and the push-based scorer ablation.

#include <gtest/gtest.h>

#include "explain/group.h"
#include "explain/tester.h"
#include "explain/weighted.h"
#include "graph/overlay.h"
#include "ppr/power_iteration.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

// ---------------------------------------------------------------------------
// GraphOverlay::SetWeight
// ---------------------------------------------------------------------------

TEST(OverlaySetWeightTest, OverridesBaseEdgeWeight) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 5.0).ok());
  EXPECT_TRUE(o.HasEdge(bg.paul, bg.candide, bg.rated));
  EXPECT_EQ(o.OutDegree(bg.paul), bg.g.OutDegree(bg.paul));
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) + 4.0);
  // The base graph is untouched.
  EXPECT_DOUBLE_EQ(bg.g.EdgeWeight(bg.paul, bg.candide, bg.rated), 1.0);

  double seen = 0.0;
  o.ForEachOutEdge(bg.paul, [&](NodeId dst, graph::EdgeTypeId t, double w) {
    if (dst == bg.candide && t == bg.rated) seen = w;
  });
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(OverlaySetWeightTest, SecondOverrideReplacesFirst) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 5.0).ok());
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 0.5).ok());
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) - 0.5);
  size_t count = 0;
  o.ForEachOutEdge(bg.paul, [&](NodeId dst, graph::EdgeTypeId t, double w) {
    if (dst == bg.candide && t == bg.rated) {
      ++count;
      EXPECT_DOUBLE_EQ(w, 0.5);
    }
  });
  EXPECT_EQ(count, 1u);
}

TEST(OverlaySetWeightTest, WorksOnOverlayAddedEdges) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.lotr, bg.rated, 3.0).ok());
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) + 3.0);
}

TEST(OverlaySetWeightTest, RejectsMissingOrInvalid) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  EXPECT_TRUE(o.SetWeight(bg.paul, bg.lotr, bg.rated, 2.0).IsNotFound());
  EXPECT_TRUE(
      o.SetWeight(bg.paul, bg.candide, bg.rated, 0.0).IsInvalidArgument());
  EXPECT_TRUE(o.SetWeight(bg.paul, 999, bg.rated, 1.0).IsInvalidArgument());
  // Removed edges cannot be re-weighted.
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  EXPECT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 2.0).IsNotFound());
}

TEST(OverlaySetWeightTest, RemoveAfterOverrideDeletesEdge) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 5.0).ok());
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  EXPECT_FALSE(o.HasEdge(bg.paul, bg.candide, bg.rated));
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) - 1.0);
}

TEST(OverlaySetWeightTest, PprSeesOverriddenTransition) {
  test::BookGraph bg = test::MakeBookGraph();
  graph::GraphOverlay o(bg.g);
  ppr::PprOptions popts;
  std::vector<double> before = ppr::PowerIterationPpr(o, bg.paul, popts);
  ASSERT_TRUE(o.SetWeight(bg.paul, bg.candide, bg.rated, 10.0).ok());
  std::vector<double> after = ppr::PowerIterationPpr(o, bg.paul, popts);
  EXPECT_GT(after[bg.candide], before[bg.candide]);
  double sum = 0.0;
  for (double x : after) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

// ---------------------------------------------------------------------------
// Weight-based explanations
// ---------------------------------------------------------------------------

TEST(WeightedExplanationTest, SolvesTheRemoveFriendlyCaseByReweighting) {
  // Where removing (Paul, D) works, down-weighting it should too.
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Result<WeightedExplanation> r = RunWeightedIncremental(
      f.g, WhyNotQuestion{f.user, f.wni}, f.opts, WeightedOptions{});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found) << FailureReasonName(r->failure);
  EXPECT_EQ(r->new_rec, f.wni);
  ASSERT_FALSE(r->adjustments.empty());

  // Verify through an overlay; also check weights stay within bounds.
  graph::GraphOverlay o(f.g);
  for (const WeightAdjustment& adj : r->adjustments) {
    EXPECT_GE(adj.new_weight, WeightedOptions{}.min_weight);
    EXPECT_LE(adj.new_weight, WeightedOptions{}.max_weight);
    EXPECT_NE(adj.new_weight, adj.old_weight);
    ASSERT_TRUE(o.SetWeight(adj.edge.src, adj.edge.dst, adj.edge.type,
                            adj.new_weight)
                    .ok());
  }
  EXPECT_EQ(recsys::Recommend(o, f.user, f.opts.rec), f.wni);
}

TEST(WeightedExplanationTest, AdjustsOnlyExistingUserEdges) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Result<WeightedExplanation> r = RunWeightedIncremental(
      f.g, WhyNotQuestion{f.user, f.wni}, f.opts, WeightedOptions{});
  ASSERT_TRUE(r.ok());
  for (const WeightAdjustment& adj : r->adjustments) {
    EXPECT_EQ(adj.edge.src, f.user);
    EXPECT_TRUE(f.g.HasEdge(adj.edge.src, adj.edge.dst, adj.edge.type));
    EXPECT_DOUBLE_EQ(
        adj.old_weight,
        f.g.EdgeWeight(adj.edge.src, adj.edge.dst, adj.edge.type));
  }
}

TEST(WeightedExplanationTest, ColdStartAndValidation) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  NodeId newbie = bg.g.AddNode(bg.user_type, "Newbie");
  Result<WeightedExplanation> r = RunWeightedIncremental(
      bg.g, WhyNotQuestion{newbie, bg.lotr}, opts, WeightedOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->failure, FailureReason::kColdStart);

  WeightedOptions bad;
  bad.min_weight = 2.0;
  bad.max_weight = 1.0;
  EXPECT_TRUE(RunWeightedIncremental(bg.g, WhyNotQuestion{bg.paul, bg.lotr},
                                     opts, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(WeightedExplanationTest, RelaxationKeepsExplanationCorrect) {
  Rng rng(1234);
  for (int trial = 0; trial < 6; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 16, 3, 5);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    NodeId user = rh.users[0];
    recsys::RecommendationList ranking =
        recsys::RankItems(rh.g, user, opts.rec);
    if (ranking.size() < 2) continue;
    NodeId wni = ranking.at(1).item;
    Result<WeightedExplanation> r = RunWeightedIncremental(
        rh.g, WhyNotQuestion{user, wni}, opts, WeightedOptions{});
    ASSERT_TRUE(r.ok());
    if (!r->found) continue;
    graph::GraphOverlay o(rh.g);
    for (const WeightAdjustment& adj : r->adjustments) {
      ASSERT_TRUE(o.SetWeight(adj.edge.src, adj.edge.dst, adj.edge.type,
                              adj.new_weight)
                      .ok());
    }
    EXPECT_EQ(recsys::Recommend(o, user, opts.rec), wni);
  }
}

// ---------------------------------------------------------------------------
// Group / category Why-Not questions
// ---------------------------------------------------------------------------

TEST(GroupExplanationTest, PromotesSomeMember) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  Emigre engine(f.g, f.opts);
  // Group = the WNI plus an unreachable sibling.
  WhyNotGroupQuestion q;
  q.user = f.user;
  q.items = {f.wni};
  for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
    if (f.g.NodeType(n) == f.opts.rec.item_type && n != f.wni) {
      q.items.push_back(n);
    }
  }
  Result<GroupExplanation> r =
      ExplainGroup(engine, q, Mode::kAdd, Heuristic::kIncremental);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found);
  EXPECT_NE(r->promoted_item, graph::kInvalidNode);
  EXPECT_TRUE(r->explanation.found);
  EXPECT_EQ(r->explanation.new_rec, r->promoted_item);
  // The current rec was in the group: it is reported skipped, not promoted.
  recsys::RecommendationList ranking = engine.CurrentRanking(f.user);
  bool rec_skipped = false;
  for (NodeId s : r->skipped) rec_skipped |= (s == ranking.Top());
  EXPECT_TRUE(rec_skipped);
}

TEST(GroupExplanationTest, AllMembersInvalidMeansNotFoundWithSkips) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  WhyNotGroupQuestion q;
  q.user = bg.paul;
  q.items = {bg.candide, bg.c_lang};  // both already interacted with
  Result<GroupExplanation> r =
      ExplainGroup(engine, q, Mode::kAdd, Heuristic::kIncremental);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->skipped.size(), 2u);
  EXPECT_EQ(r->attempts, 0u);
}

TEST(GroupExplanationTest, EmptyGroupRejected) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  EXPECT_TRUE(ExplainGroup(engine, WhyNotGroupQuestion{bg.paul, {}},
                           Mode::kAdd, Heuristic::kIncremental)
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupExplanationTest, ItemsOfCategoryCollectsMembers) {
  test::BookGraph bg = test::MakeBookGraph();
  std::vector<NodeId> fantasy_items = ItemsOfCategory(
      bg.g, bg.fantasy, bg.belongs_to, bg.item_type);
  ASSERT_EQ(fantasy_items.size(), 2u);
  EXPECT_EQ(fantasy_items[0], bg.harry_potter);
  EXPECT_EQ(fantasy_items[1], bg.lotr);
  EXPECT_TRUE(ItemsOfCategory(bg.g, 999, bg.belongs_to, bg.item_type)
                  .empty());
}

TEST(GroupExplanationTest, CategoryQuestionEndToEnd) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(bg.paul);
  // "Why no Fantasy book?" — answerable iff some fantasy book can be
  // promoted; whatever the outcome, the result must be self-consistent.
  WhyNotGroupQuestion q;
  q.user = bg.paul;
  q.items = ItemsOfCategory(bg.g, bg.fantasy, bg.belongs_to, bg.item_type);
  Result<GroupExplanation> r =
      ExplainGroup(engine, q, Mode::kAdd, Heuristic::kBruteForce);
  ASSERT_TRUE(r.ok());
  if (r->found) {
    EXPECT_EQ(bg.g.NodeType(r->promoted_item), bg.item_type);
    ExplanationTester checker(bg.g, bg.paul, r->promoted_item, opts);
    EXPECT_TRUE(checker.Test(r->explanation.edges, r->explanation.mode));
  } else {
    EXPECT_GT(r->attempts + r->skipped.size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Scorer ablation: forward push vs power iteration
// ---------------------------------------------------------------------------

TEST(ScorerTest, PushScorerAgreesOnClearWinners) {
  Rng rng(55);
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 20, 3, 6);
  recsys::RecommenderOptions exact;
  exact.item_type = rh.item_type;
  recsys::RecommenderOptions push = exact;
  push.scorer = recsys::Scorer::kForwardPush;
  push.ppr.epsilon = 1e-10;  // tight push: ranking must coincide

  for (NodeId user : rh.users) {
    recsys::RecommendationList a = recsys::RankItems(rh.g, user, exact);
    recsys::RecommendationList b = recsys::RankItems(rh.g, user, push);
    ASSERT_EQ(a.size(), b.size());
    if (!a.empty()) {
      EXPECT_EQ(a.Top(), b.Top()) << "user " << user;
    }
  }
}

}  // namespace
}  // namespace emigre::explain
