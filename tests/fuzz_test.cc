// Randomized stress tests: long operation sequences against invariants.
//
// These complement the per-module unit tests with "anything the API allows
// must keep the invariants" checks: graph mutation storms stay consistent,
// overlays always mirror an equivalently mutated copy, PPR stays a
// distribution, CSV round-trips arbitrary field content, and graph I/O
// round-trips randomly generated graphs.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "graph/hin_graph.h"
#include "graph/io.h"
#include "graph/overlay.h"
#include "graph/validate.h"
#include "ppr/power_iteration.h"
#include "test_util.h"
#include "util/csv.h"
#include "util/rng.h"

namespace emigre {
namespace {

using graph::EdgeTypeId;
using graph::HinGraph;
using graph::NodeId;

TEST(GraphFuzzTest, MutationStormKeepsInvariants) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 5; ++trial) {
    HinGraph g;
    graph::NodeTypeId nt = g.RegisterNodeType("n");
    std::vector<EdgeTypeId> types = {g.RegisterEdgeType("a"),
                                     g.RegisterEdgeType("b"),
                                     g.RegisterEdgeType("c")};
    for (int i = 0; i < 12; ++i) g.AddNode(nt);

    for (int step = 0; step < 400; ++step) {
      NodeId src = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      EdgeTypeId type = types[rng.NextBounded(types.size())];
      switch (rng.NextBounded(4)) {
        case 0:
          g.AddEdge(src, dst, type, rng.NextDouble(0.1, 5.0)).ok();
          break;
        case 1:
          g.RemoveEdge(src, dst, type).ok();
          break;
        case 2:
          g.RemoveEdgesBetween(src, dst);
          break;
        case 3:
          g.AddNode(nt);
          break;
      }
      if (step % 50 == 0) {
        ASSERT_TRUE(graph::ValidateGraph(g).ok()) << "step " << step;
      }
    }
    ASSERT_TRUE(graph::ValidateGraph(g).ok());

    // PPR on whatever came out is still a distribution from any seed with
    // out-edges (isolated seeds keep all mass at themselves).
    ppr::PprOptions opts;
    for (int probe = 0; probe < 3; ++probe) {
      NodeId seed = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      std::vector<double> p = ppr::PowerIterationPpr(g, seed, opts);
      double sum = 0.0;
      for (double x : p) {
        ASSERT_GE(x, -1e-12);
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-8);
    }
  }
}

TEST(GraphFuzzTest, OverlayWithSetWeightMatchesMutatedCopy) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 4, 12, 2, 4);
    graph::GraphOverlay overlay(rh.g);
    HinGraph mutated = rh.g;

    for (int step = 0; step < 60; ++step) {
      NodeId src = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      EdgeTypeId type = rng.NextBool() ? rh.rated : rh.belongs_to;
      double w = rng.NextDouble(0.1, 3.0);
      switch (rng.NextBounded(3)) {
        case 0: {
          Status a = overlay.AddEdge(src, dst, type, w);
          Status b = mutated.AddEdge(src, dst, type, w);
          // The overlay's un-remove restores the ORIGINAL weight; emulate
          // on the copy by checking both succeeded/failed only.
          ASSERT_EQ(a.ok(), b.ok());
          if (a.ok()) {
            // Align weights: force both to the overlay's effective weight.
            double effective = 0.0;
            overlay.ForEachOutEdge(src, [&](NodeId d, EdgeTypeId t,
                                            double ww) {
              if (d == dst && t == type) effective = ww;
            });
            mutated.RemoveEdge(src, dst, type).CheckOK();
            mutated.AddEdge(src, dst, type, effective).CheckOK();
          }
          break;
        }
        case 1: {
          Status a = overlay.RemoveEdge(src, dst, type);
          Status b = mutated.RemoveEdge(src, dst, type);
          ASSERT_EQ(a.ok(), b.ok());
          break;
        }
        case 2: {
          bool effective_has = overlay.HasEdge(src, dst, type);
          Status a = overlay.SetWeight(src, dst, type, w);
          ASSERT_EQ(a.ok(), effective_has) << a;
          if (a.ok()) {
            mutated.RemoveEdge(src, dst, type).CheckOK();
            mutated.AddEdge(src, dst, type, w).CheckOK();
          }
          break;
        }
      }
    }

    // Effective edge multisets must coincide.
    using Snapshot =
        std::map<std::tuple<NodeId, NodeId, EdgeTypeId>, double>;
    Snapshot from_overlay;
    Snapshot from_copy;
    for (NodeId n = 0; n < rh.g.NumNodes(); ++n) {
      overlay.ForEachOutEdge(n, [&](NodeId d, EdgeTypeId t, double w) {
        from_overlay[{n, d, t}] += w;
      });
      mutated.ForEachOutEdge(n, [&](NodeId d, EdgeTypeId t, double w) {
        from_copy[{n, d, t}] += w;
      });
    }
    ASSERT_EQ(from_overlay.size(), from_copy.size());
    for (const auto& [key, w] : from_overlay) {
      auto it = from_copy.find(key);
      ASSERT_NE(it, from_copy.end());
      EXPECT_NEAR(w, it->second, 1e-12);
    }
    for (NodeId n = 0; n < rh.g.NumNodes(); ++n) {
      EXPECT_NEAR(overlay.OutWeight(n), mutated.OutWeight(n), 1e-9);
      EXPECT_EQ(overlay.OutDegree(n), mutated.OutDegree(n));
    }
  }
}

TEST(CsvFuzzTest, ArbitraryFieldsRoundTrip) {
  Rng rng(0xCAFE);
  const std::string alphabet =
      "abcXYZ019 ,\"\n\r;|\t'~`!@#$%^&*(){}[]";
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<std::string>> rows;
    size_t num_rows = 1 + rng.NextBounded(8);
    size_t num_cols = 1 + rng.NextBounded(6);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string field;
        size_t len = rng.NextBounded(12);
        for (size_t i = 0; i < len; ++i) {
          field += alphabet[rng.NextBounded(alphabet.size())];
        }
        row.push_back(std::move(field));
      }
      rows.push_back(std::move(row));
    }

    std::string path = test::MakeTempDir("csvfuzz") + "/t.csv";
    {
      CsvWriter w(path);
      for (const auto& row : rows) ASSERT_TRUE(w.WriteRow(row).ok());
      ASSERT_TRUE(w.Close().ok());
    }
    CsvReader r(path);
    std::vector<std::string> row;
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(r.ReadRow(&row)) << "row " << i;
      EXPECT_EQ(row, rows[i]) << "row " << i;
    }
    EXPECT_FALSE(r.ReadRow(&row));
  }
}

TEST(GraphIoFuzzTest, RandomGraphsRoundTrip) {
  Rng rng(0xD00D);
  for (int trial = 0; trial < 8; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 1 + rng.NextBounded(6),
                                             5 + rng.NextBounded(20), 3, 5);
    std::string path = test::MakeTempDir("iofuzz") + "/g.graph";
    ASSERT_TRUE(graph::SaveGraph(rh.g, path).ok());
    Result<HinGraph> loaded = graph::LoadGraph(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_EQ(loaded->NumNodes(), rh.g.NumNodes());
    ASSERT_EQ(loaded->NumEdges(), rh.g.NumEdges());
    ASSERT_TRUE(graph::ValidateGraph(loaded.value()).ok());
    // PPR agreement is the strongest cheap equivalence check.
    if (rh.g.NumNodes() > 0) {
      NodeId seed = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      std::vector<double> a =
          ppr::PowerIterationPpr(rh.g, seed, ppr::PprOptions{});
      std::vector<double> b =
          ppr::PowerIterationPpr(loaded.value(), seed, ppr::PprOptions{});
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace emigre
