#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "graph/validate.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::graph {
namespace {

TEST(SubgraphTest, HopZeroKeepsSeedsAndTheirMutualEdges) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> sub =
      ExtractNeighborhood(bg.g, {bg.paul, bg.alice}, 0);
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->graph.NumNodes(), 2u);
  // Paul follows Alice: the induced edge survives.
  NodeId new_paul = sub->old_to_new[bg.paul];
  NodeId new_alice = sub->old_to_new[bg.alice];
  ASSERT_NE(new_paul, kInvalidNode);
  ASSERT_NE(new_alice, kInvalidNode);
  EXPECT_TRUE(sub->graph.HasEdge(new_paul, new_alice));
  EXPECT_TRUE(ValidateGraph(sub->graph).ok());
}

TEST(SubgraphTest, OneHopCoversDirectNeighbors) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> sub = ExtractNeighborhood(bg.g, {bg.paul}, 1);
  ASSERT_TRUE(sub.ok());
  // Paul's one-hop ball: himself, rated books (Candide, C), followed users
  // (Alice, Bob) — plus in-neighbors (the rated edges are bidirectional).
  std::set<NodeId> expected = {bg.paul, bg.candide, bg.c_lang, bg.alice,
                               bg.bob};
  for (NodeId n : expected) {
    EXPECT_NE(sub->old_to_new[n], kInvalidNode) << bg.g.DisplayName(n);
  }
  // Two hops away: Harry Potter (via Alice) must be absent.
  EXPECT_EQ(sub->old_to_new[bg.harry_potter], kInvalidNode);
  EXPECT_EQ(sub->graph.NumNodes(), expected.size());
}

TEST(SubgraphTest, LargeHopRecoversConnectedComponent) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> sub = ExtractNeighborhood(bg.g, {bg.paul}, 10);
  ASSERT_TRUE(sub.ok());
  // The book graph is connected: everything survives, edges included.
  EXPECT_EQ(sub->graph.NumNodes(), bg.g.NumNodes());
  EXPECT_EQ(sub->graph.NumEdges(), bg.g.NumEdges());
}

TEST(SubgraphTest, MappingsAreConsistentAndOrderPreserving) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> sub = ExtractNeighborhood(bg.g, {bg.alice}, 2);
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->new_to_old.size(), sub->graph.NumNodes());
  for (NodeId new_id = 0; new_id < sub->graph.NumNodes(); ++new_id) {
    NodeId old_id = sub->new_to_old[new_id];
    EXPECT_EQ(sub->old_to_new[old_id], new_id);
    EXPECT_EQ(sub->graph.Label(new_id), bg.g.Label(old_id));
    EXPECT_EQ(sub->graph.NodeTypeName(sub->graph.NodeType(new_id)),
              bg.g.NodeTypeName(bg.g.NodeType(old_id)));
    if (new_id > 0) {
      EXPECT_LT(sub->new_to_old[new_id - 1], old_id);  // ascending order
    }
  }
}

TEST(SubgraphTest, EdgeWeightsAndTypesPreserved) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> sub = ExtractNeighborhood(bg.g, {bg.paul}, 4);
  ASSERT_TRUE(sub.ok());
  for (const EdgeRef& e : sub->graph.AllEdges()) {
    NodeId old_src = sub->new_to_old[e.src];
    NodeId old_dst = sub->new_to_old[e.dst];
    EXPECT_DOUBLE_EQ(sub->graph.EdgeWeight(e.src, e.dst, e.type),
                     bg.g.EdgeWeight(old_src, old_dst, e.type));
  }
}

TEST(SubgraphTest, RejectsInvalidSeed) {
  test::BookGraph bg = test::MakeBookGraph();
  EXPECT_TRUE(
      ExtractNeighborhood(bg.g, {999}, 2).status().IsInvalidArgument());
}

TEST(SubgraphTest, DuplicateSeedsAreHarmless) {
  test::BookGraph bg = test::MakeBookGraph();
  Result<Subgraph> a = ExtractNeighborhood(bg.g, {bg.paul}, 1);
  Result<Subgraph> b =
      ExtractNeighborhood(bg.g, {bg.paul, bg.paul, bg.paul}, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.NumNodes(), b->graph.NumNodes());
  EXPECT_EQ(a->graph.NumEdges(), b->graph.NumEdges());
}

TEST(SubgraphTest, BfsDistancePropertyOnRandomGraphs) {
  Rng rng(31415);
  for (int trial = 0; trial < 5; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 25, 3, 4);
    NodeId seed = rh.users[rng.NextBounded(rh.users.size())];
    const size_t hops = 2;
    Result<Subgraph> sub = ExtractNeighborhood(rh.g, {seed}, hops);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(ValidateGraph(sub->graph).ok());

    // Every kept node is within `hops` of the seed *in the subgraph* too
    // (BFS over the undirected closure).
    std::vector<int> dist(sub->graph.NumNodes(), -1);
    std::deque<NodeId> frontier;
    NodeId new_seed = sub->old_to_new[seed];
    dist[new_seed] = 0;
    frontier.push_back(new_seed);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      auto visit = [&](NodeId v, EdgeTypeId, double) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          frontier.push_back(v);
        }
      };
      sub->graph.ForEachOutEdge(u, visit);
      sub->graph.ForEachInEdge(u, visit);
    }
    for (NodeId n = 0; n < sub->graph.NumNodes(); ++n) {
      ASSERT_GE(dist[n], 0);
      EXPECT_LE(static_cast<size_t>(dist[n]), hops);
    }
  }
}

}  // namespace
}  // namespace emigre::graph
