// Coverage for small utilities and option paths not exercised elsewhere:
// logger levels, wall-clock deadlines, the action-vocabulary filter, the
// unidirectional dataset pipeline, and RecWalk degenerate inputs.

#include <gtest/gtest.h>

#include <thread>

#include "data/amazon_lite.h"
#include "data/synthetic_amazon.h"
#include "explain/options.h"
#include "recsys/recwalk.h"
#include "test_util.h"
#include "util/logging.h"
#include "util/timer.h"

namespace emigre {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Logger::GetLevel()) {}
  ~LogLevelGuard() { Logger::SetLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelThresholdControlsEmission) {
  LogLevelGuard guard;
  Logger::SetLevel(LogLevel::kWarning);
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kWarning));
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kError));
  // Fatal always fires (it precedes an abort).
  Logger::SetLevel(LogLevel::kFatal);
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kFatal));
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kError));
}

TEST(LoggingTest, MacroCompilesAndRespectsLevel) {
  LogLevelGuard guard;
  Logger::SetLevel(LogLevel::kError);
  // Streamed expressions below the threshold must not be evaluated.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  EMIGRE_LOG(kInfo) << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(TimerTest, WallTimerAdvances) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.ElapsedSeconds(), 0.004);
  EXPECT_GE(timer.ElapsedMicros(), 4000);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.004);
}

TEST(TimerTest, DeadlineSemantics) {
  Deadline unlimited;
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_DOUBLE_EQ(unlimited.BudgetSeconds(), 0.0);

  Deadline tiny(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(tiny.Expired());

  Deadline generous(60.0);
  EXPECT_FALSE(generous.Expired());
}

TEST(OptionsTest, AllowedEdgeTypeFilter) {
  explain::EmigreOptions opts;
  EXPECT_TRUE(opts.IsAllowedEdgeType(0));  // empty list = allow all
  EXPECT_TRUE(opts.IsAllowedEdgeType(17));
  opts.allowed_edge_types = {1, 3};
  EXPECT_FALSE(opts.IsAllowedEdgeType(0));
  EXPECT_TRUE(opts.IsAllowedEdgeType(1));
  EXPECT_FALSE(opts.IsAllowedEdgeType(2));
  EXPECT_TRUE(opts.IsAllowedEdgeType(3));
}

TEST(AmazonLiteTest, UnidirectionalPipelineOmitsMirrors) {
  data::SyntheticAmazonOptions gen;
  gen.num_users = 20;
  gen.num_items = 100;
  gen.num_categories = 5;
  gen.min_actions_per_user = 4;
  gen.max_actions_per_user = 10;
  auto ds = data::GenerateSyntheticAmazon(gen);
  ASSERT_TRUE(ds.ok());

  data::AmazonLiteOptions opts;
  opts.bidirectional = false;
  opts.neighborhood_hops = 0;
  opts.sample_users = 4;
  opts.min_user_actions = 1;
  auto lite = data::BuildAmazonLite(ds.value(), opts);
  ASSERT_TRUE(lite.ok()) << lite.status();

  // rated edges point user -> item only.
  size_t forward = 0;
  size_t backward = 0;
  const graph::HinGraph& g = lite->graph;
  for (const graph::EdgeRef& e : g.AllEdges()) {
    if (e.type != lite->rated_type) continue;
    if (g.NodeType(e.src) == lite->user_type) ++forward;
    if (g.NodeType(e.src) == lite->item_type) ++backward;
  }
  EXPECT_GT(forward, 0u);
  EXPECT_EQ(backward, 0u);
}

TEST(RecWalkTest, GraphWithoutUsersYieldsNoSimilarityEdges) {
  graph::HinGraph g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  (void)user_type;
  g.AddNode(item_type, "i0");
  g.AddNode(item_type, "i1");
  auto rw = recsys::BuildRecWalkGraph(g, item_type, user_type,
                                      recsys::RecWalkOptions{});
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ(rw->NumEdges(), 0u);
}

TEST(RecWalkTest, RejectsUnknownTypes) {
  graph::HinGraph g;
  g.RegisterNodeType("user");
  EXPECT_TRUE(recsys::BuildRecWalkGraph(g, 7, 0, recsys::RecWalkOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(RecWalkTest, SingleSharedUserCreatesSymmetricSimilarity) {
  graph::HinGraph g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto rated = g.RegisterEdgeType("rated");
  graph::NodeId u = g.AddNode(user_type);
  graph::NodeId a = g.AddNode(item_type, "a");
  graph::NodeId b = g.AddNode(item_type, "b");
  ASSERT_TRUE(g.AddBidirectional(u, a, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(u, b, rated).ok());
  recsys::RecWalkOptions opts;
  opts.min_similarity = 0.0;
  auto rw = recsys::BuildRecWalkGraph(g, item_type, user_type, opts);
  ASSERT_TRUE(rw.ok());
  auto sim = rw->FindEdgeType("similar-to");
  EXPECT_TRUE(rw->HasEdge(a, b, sim));
  EXPECT_TRUE(rw->HasEdge(b, a, sim));
  // Cosine of two identical one-hot user vectors is 1: the similarity
  // block gets (1-beta) of each item's original out-weight.
  double w_ab = rw->EdgeWeight(a, b, sim);
  double expected = (1.0 - opts.beta) * g.OutWeight(a);
  EXPECT_NEAR(w_ab, expected, 1e-12);
}

}  // namespace
}  // namespace emigre
