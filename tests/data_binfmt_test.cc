// The emigre.bin.v1 container (docs/data_format.md): writer/reader round
// trips, the streaming generator sink, corruption robustness, and the
// --format=auto dispatch.

#include "data/binfmt.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "data/bin_io.h"
#include "data/csv_io.h"
#include "data/schema.h"
#include "data/synthetic_amazon.h"
#include "fault/fault.h"
#include "test_util.h"
#include "util/status.h"

namespace emigre::data {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SyntheticAmazonOptions SmallGenOptions() {
  SyntheticAmazonOptions gen;
  gen.num_users = 12;
  gen.num_items = 60;
  gen.num_categories = 4;
  gen.min_actions_per_user = 3;
  gen.max_actions_per_user = 8;
  gen.embedding_dim = 4;
  return gen;
}

TEST(BinfmtTest, RoundTripsEveryDtype) {
  std::string path = test::MakeTempDir("binfmt") + "/all.bin";
  {
    binfmt::BinWriter w(path);
    ASSERT_TRUE(w.status().ok());
    auto sect = w.BeginSection(
        "everything",
        {{"u8", binfmt::Dtype::kU8},
         {"u16", binfmt::Dtype::kU16},
         {"u32", binfmt::Dtype::kU32},
         {"u64", binfmt::Dtype::kU64},
         {"i32", binfmt::Dtype::kI32},
         {"f32", binfmt::Dtype::kF32},
         {"f64", binfmt::Dtype::kF64},
         {"s", binfmt::Dtype::kStr},
         {"lu32", binfmt::Dtype::kU32, /*is_list=*/true},
         {"lf32", binfmt::Dtype::kF32, /*is_list=*/true}});
    ASSERT_TRUE(sect.ok());
    for (uint32_t row = 0; row < 100; ++row) {
      size_t s = sect.value();
      ASSERT_TRUE(w.AppendU8(s, 0, static_cast<uint8_t>(row)).ok());
      ASSERT_TRUE(w.AppendU16(s, 1, static_cast<uint16_t>(row * 3)).ok());
      ASSERT_TRUE(w.AppendU32(s, 2, row * 7).ok());
      ASSERT_TRUE(w.AppendU64(s, 3, uint64_t{row} << 33).ok());
      ASSERT_TRUE(w.AppendI32(s, 4, -static_cast<int32_t>(row)).ok());
      ASSERT_TRUE(w.AppendF32(s, 5, 0.5f * static_cast<float>(row)).ok());
      ASSERT_TRUE(w.AppendF64(s, 6, 0.25 * row).ok());
      ASSERT_TRUE(w.AppendStr(s, 7, "name-" + std::to_string(row)).ok());
      std::vector<uint32_t> lu = {row, row + 1, row + 2};
      ASSERT_TRUE(w.AppendListU32(s, 8, lu.data(), row % 4).ok());
      std::vector<float> lf = {1.5f, -2.5f};
      ASSERT_TRUE(w.AppendListF32(s, 9, lf.data(), lf.size()).ok());
      ASSERT_TRUE(w.EndRow(s).ok());
    }
    ASSERT_TRUE(w.EndSection(sect.value()).ok());
    ASSERT_TRUE(w.Finish().ok());
  }

  ASSERT_TRUE(binfmt::SniffBinDataset(path));
  auto r = binfmt::BinReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->sections().size(), 1u);
  const binfmt::SectionInfo& info = r->sections()[0];
  EXPECT_EQ(info.name, "everything");
  EXPECT_EQ(info.row_count, 100u);
  ASSERT_EQ(info.columns.size(), 10u);
  EXPECT_EQ(info.columns[7].dtype, binfmt::Dtype::kStr);
  EXPECT_TRUE(info.columns[8].is_list);

  auto u32s = r->OpenColumn(0, 2);
  ASSERT_TRUE(u32s.ok());
  uint32_t v = 0;
  for (uint32_t row = 0; row < 100; ++row) {
    ASSERT_TRUE(u32s->NextU32(&v));
    EXPECT_EQ(v, row * 7);
  }
  EXPECT_FALSE(u32s->NextU32(&v));
  EXPECT_TRUE(u32s->Finish().ok());

  auto strs = r->OpenColumn(0, 7);
  ASSERT_TRUE(strs.ok());
  std::string sv;
  ASSERT_TRUE(strs->NextStr(&sv));
  EXPECT_EQ(sv, "name-0");
  EXPECT_TRUE(strs->Finish().ok());

  auto lists = r->OpenColumn(0, 8);
  ASSERT_TRUE(lists.ok());
  std::vector<uint32_t> lv;
  ASSERT_TRUE(lists->NextListU32(&lv));
  EXPECT_TRUE(lv.empty());  // row 0 appended 0 elements
  ASSERT_TRUE(lists->NextListU32(&lv));
  EXPECT_EQ(lv, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(lists->Finish().ok());
}

TEST(BinfmtTest, SpillingWriterInterleavesOpenSections) {
  std::string path = test::MakeTempDir("binfmt") + "/interleaved.bin";
  {
    // A 16-byte spill threshold forces every column through the temp-file
    // path, and both sections stay open across the interleaved appends —
    // the shape the streaming generator relies on.
    binfmt::BinWriter w(path, /*spill_threshold_bytes=*/16);
    ASSERT_TRUE(w.status().ok());
    auto a = w.BeginSection("a", {{"x", binfmt::Dtype::kU32}});
    auto b = w.BeginSection("b", {{"y", binfmt::Dtype::kStr}});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (uint32_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(w.AppendU32(a.value(), 0, i).ok());
      ASSERT_TRUE(w.EndRow(a.value()).ok());
      if (i % 2 == 0) {
        ASSERT_TRUE(
            w.AppendStr(b.value(), 0, "row-" + std::to_string(i)).ok());
        ASSERT_TRUE(w.EndRow(b.value()).ok());
      }
    }
    ASSERT_TRUE(w.EndSection(b.value()).ok());
    ASSERT_TRUE(w.EndSection(a.value()).ok());
    ASSERT_TRUE(w.Finish().ok());
  }
  auto r = binfmt::BinReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status();
  // Sections land in EndSection order.
  ASSERT_EQ(r->sections().size(), 2u);
  EXPECT_EQ(r->sections()[0].name, "b");
  EXPECT_EQ(r->sections()[0].row_count, 32u);
  EXPECT_EQ(r->sections()[1].name, "a");
  EXPECT_EQ(r->sections()[1].row_count, 64u);
  auto c = r->OpenColumn(1, 0);
  ASSERT_TRUE(c.ok());
  uint32_t v = 0;
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(c->NextU32(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(c->Finish().ok());
}

TEST(DatasetBinTest, RoundTripIsExact) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallGenOptions());
  ASSERT_TRUE(ds.ok());
  std::string path = test::MakeTempDir("binio") + "/ds.bin";
  ASSERT_TRUE(SaveDatasetBin(ds.value(), path).ok());

  Result<Dataset> loaded = LoadDatasetBin(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->categories.size(), ds->categories.size());
  ASSERT_EQ(loaded->items.size(), ds->items.size());
  ASSERT_EQ(loaded->users.size(), ds->users.size());
  ASSERT_EQ(loaded->ratings.size(), ds->ratings.size());
  ASSERT_EQ(loaded->reviews.size(), ds->reviews.size());
  for (size_t i = 0; i < ds->items.size(); ++i) {
    EXPECT_EQ(loaded->items[i].name, ds->items[i].name);
    EXPECT_EQ(loaded->items[i].category, ds->items[i].category);
    // Binary columns preserve float bits exactly — no CSV text round-off.
    EXPECT_EQ(loaded->items[i].popularity, ds->items[i].popularity);
    EXPECT_EQ(loaded->items[i].quality, ds->items[i].quality);
  }
  for (size_t i = 0; i < ds->users.size(); ++i) {
    EXPECT_EQ(loaded->users[i].rating_bias, ds->users[i].rating_bias);
    EXPECT_EQ(loaded->users[i].preferences, ds->users[i].preferences);
  }
  for (size_t i = 0; i < ds->ratings.size(); ++i) {
    EXPECT_EQ(loaded->ratings[i].user, ds->ratings[i].user);
    EXPECT_EQ(loaded->ratings[i].item, ds->ratings[i].item);
    EXPECT_EQ(loaded->ratings[i].stars, ds->ratings[i].stars);
  }
  for (size_t i = 0; i < ds->reviews.size(); ++i) {
    EXPECT_EQ(loaded->reviews[i].embedding, ds->reviews[i].embedding);
  }
}

TEST(DatasetBinTest, StreamedGeneratorMatchesCollectedBytes) {
  SyntheticAmazonOptions gen = SmallGenOptions();
  std::string dir = test::MakeTempDir("binio");
  std::string streamed = dir + "/streamed.bin";
  std::string collected = dir + "/collected.bin";

  ASSERT_TRUE(GenerateSyntheticAmazonBin(gen, streamed).ok());
  Result<Dataset> ds = GenerateSyntheticAmazon(gen);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(SaveDatasetBin(ds.value(), collected).ok());

  // The streaming sink must be indistinguishable from materialize-then-save
  // down to the byte.
  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(collected));
}

TEST(DatasetBinTest, SinkRejectsOutOfPhaseRows) {
  std::string path = test::MakeTempDir("binio") + "/phase.bin";
  BinDatasetSink sink(path);
  ASSERT_TRUE(sink.OnCategory(Category{0, "c"}).ok());
  ASSERT_TRUE(sink.OnItem(Item{0, "i", 0, 0.5, 0.5}).ok());
  // Items are closed once users begin; a late item must be rejected.
  ASSERT_TRUE(sink.OnUser(User{0, "u", {}, 0.0}).ok());
  Status late = sink.OnItem(Item{1, "late", 0, 0.5, 0.5});
  EXPECT_EQ(late.code(), StatusCode::kInvalidArgument);
}

TEST(DatasetBinTest, CorruptionSurfacesAsTypedErrors) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallGenOptions());
  ASSERT_TRUE(ds.ok());
  std::string dir = test::MakeTempDir("binio");
  std::string path = dir + "/ds.bin";
  ASSERT_TRUE(SaveDatasetBin(ds.value(), path).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 64u);

  {  // Bad magic: not this format at all.
    std::string bad = good;
    bad[0] = 'X';
    WriteFileBytes(dir + "/magic.bin", bad);
    auto r = LoadDatasetBin(dir + "/magic.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(binfmt::SniffBinDataset(dir + "/magic.bin"));
  }
  {  // Corrupt header CRC.
    std::string bad = good;
    bad[20] = static_cast<char>(bad[20] ^ 0x01);
    WriteFileBytes(dir + "/hdrcrc.bin", bad);
    auto r = LoadDatasetBin(dir + "/hdrcrc.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Truncation: cut the file mid-payload.
    WriteFileBytes(dir + "/trunc.bin", good.substr(0, good.size() / 2));
    auto r = LoadDatasetBin(dir + "/trunc.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().code() == StatusCode::kIOError ||
                r.status().code() == StatusCode::kInvalidArgument)
        << r.status();
  }
  {  // Bit rot in the last payload byte: the column CRC must catch it.
    std::string bad = good;
    bad.back() = static_cast<char>(bad.back() ^ 0x40);
    WriteFileBytes(dir + "/bitrot.bin", bad);
    auto r = LoadDatasetBin(dir + "/bitrot.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Garbage that is not even a header.
    WriteFileBytes(dir + "/garbage.bin", "definitely not a dataset");
    auto r = LoadDatasetBin(dir + "/garbage.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().code() == StatusCode::kIOError ||
                r.status().code() == StatusCode::kInvalidArgument)
        << r.status();
  }
}

TEST(DatasetBinTest, FaultSiteInjectsOnRead) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault sites compiled out";
  }
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallGenOptions());
  ASSERT_TRUE(ds.ok());
  std::string path = test::MakeTempDir("binio") + "/ds.bin";
  ASSERT_TRUE(SaveDatasetBin(ds.value(), path).ok());

  auto& reg = fault::FaultRegistry::Global();
  reg.Reset();
  fault::FaultSpec spec;
  spec.site = "data.bin.read";
  spec.nth = 1;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(reg.Arm(spec).ok());
  auto r = LoadDatasetBin(path);
  reg.Reset();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(DatasetAutoTest, DispatchesOnFormatAndSniff) {
  Result<Dataset> ds = GenerateSyntheticAmazon(SmallGenOptions());
  ASSERT_TRUE(ds.ok());
  std::string dir = test::MakeTempDir("auto");
  std::string bin = dir + "/ds.bin";
  std::string csv_dir = test::MakeTempDir("auto_csv");
  ASSERT_TRUE(SaveDatasetBin(ds.value(), bin).ok());
  ASSERT_TRUE(SaveDatasetCsv(ds.value(), csv_dir).ok());

  auto from_bin = LoadDatasetAuto(bin, "auto");
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();
  EXPECT_EQ(from_bin->ratings.size(), ds->ratings.size());

  auto from_csv = LoadDatasetAuto(csv_dir, "auto");
  ASSERT_TRUE(from_csv.ok()) << from_csv.status();
  EXPECT_EQ(from_csv->ratings.size(), ds->ratings.size());

  auto forced_bin = LoadDatasetAuto(bin, "bin");
  EXPECT_TRUE(forced_bin.ok());
  auto mismatched = LoadDatasetAuto(csv_dir, "bin");
  EXPECT_FALSE(mismatched.ok());
  auto unknown = LoadDatasetAuto(bin, "parquet");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emigre::data
