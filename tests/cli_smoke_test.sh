#!/bin/sh
# End-to-end smoke test of the emigre CLI: generate -> build-graph ->
# stats -> recommend -> explain -> experiment. Exercises the real binary
# the way a user would. Arguments: $1 = path to the emigre binary.
set -e
EMIGRE="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$EMIGRE" generate --dir "$DIR/ds" --users 25 --items 150 --categories 6 \
    --seed 99 > "$DIR/log" 2>&1
grep -q "dataset: 25 users" "$DIR/log"

"$EMIGRE" build-graph --dataset "$DIR/ds" --out "$DIR/g.graph" \
    --sample-users 5 > "$DIR/log" 2>&1
grep -q "graph:" "$DIR/log"
USER_ID=$(sed -n 's/^sampled evaluation users: \([0-9]*\).*/\1/p' "$DIR/log")
test -n "$USER_ID"

"$EMIGRE" stats --graph "$DIR/g.graph" > "$DIR/log" 2>&1
grep -q "Average Degree" "$DIR/log"

"$EMIGRE" recommend --graph "$DIR/g.graph" --user "$USER_ID" --top 3 \
    > "$DIR/log" 2>&1
ITEM_ID=$(sed -n '2s/.*\[\([0-9]*\)\].*/\1/p' "$DIR/log")
test -n "$ITEM_ID"

# explain returns 0 (found) or 3 (valid question, no explanation) — both
# are correct CLI behavior; anything else is a failure. --trace and
# --metrics-out must emit the span tree and a valid metrics JSON either way.
set +e
"$EMIGRE" explain --graph "$DIR/g.graph" --user "$USER_ID" \
    --item "$ITEM_ID" --mode auto --heuristic incremental \
    --trace --metrics-out "$DIR/m.json" > "$DIR/log" 2>&1
CODE=$?
set -e
test "$CODE" -eq 0 -o "$CODE" -eq 3
grep -q "== trace ==" "$DIR/log"
grep -q "explain.queries" "$DIR/log"
grep -q '"schema": "emigre.metrics.v1"' "$DIR/m.json"
grep -q '"trace"' "$DIR/m.json"

# selfcheck runs the invariant validators against the built graph and must
# report zero violations; --metrics-out exposes the check.* counters.
"$EMIGRE" selfcheck --graph "$DIR/g.graph" --level full --samples 2 \
    --edits 2 --metrics-out "$DIR/sc.json" > "$DIR/log" 2>&1
grep -q "0 violation(s)" "$DIR/log"
grep -q "check.graph.pass" "$DIR/sc.json"
if "$EMIGRE" selfcheck --graph "$DIR/g.graph" --level bogus 2>/dev/null; then
  exit 1
fi

# Exit-code contract (tools/emigre_cli.cc): usage errors are 2, internal
# errors 1, no-explanation-found 3 (asserted above).
set +e
"$EMIGRE" 2>/dev/null; NOARGS=$?
"$EMIGRE" unknown-command 2>/dev/null; UNKNOWN=$?
"$EMIGRE" explain --bogus 2>/dev/null; BADFLAG=$?
"$EMIGRE" recommend --graph "$DIR/g.graph" --user -1 2>/dev/null; BADUSER=$?
"$EMIGRE" stats --graph "$DIR/does-not-exist.graph" 2>/dev/null; NOFILE=$?
set -e
test "$NOARGS" -eq 2
test "$UNKNOWN" -eq 2
test "$BADFLAG" -eq 2
test "$BADUSER" -eq 2
test "$NOFILE" -eq 1

# chaos runs in every build; without -DEMIGRE_FAULT_INJECTION=ON the sites
# are compiled out and it degenerates to a plain-pipeline soak.
"$EMIGRE" chaos --seeds 2 --queries 1 --users 20 --items 120 \
    > "$DIR/log" 2>&1
grep -q "chaos soak passed" "$DIR/log"

echo "cli smoke ok"
