#!/bin/sh
# End-to-end smoke test of the emigre CLI: generate -> build-graph ->
# stats -> recommend -> explain -> experiment. Exercises the real binary
# the way a user would. Arguments: $1 = path to the emigre binary.
set -e
EMIGRE="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$EMIGRE" generate --dir "$DIR/ds" --users 25 --items 150 --categories 6 \
    --seed 99 > "$DIR/log" 2>&1
grep -q "dataset: 25 users" "$DIR/log"

"$EMIGRE" build-graph --dataset "$DIR/ds" --out "$DIR/g.graph" \
    --sample-users 5 > "$DIR/log" 2>&1
grep -q "graph:" "$DIR/log"
USER_ID=$(sed -n 's/^sampled evaluation users: \([0-9]*\).*/\1/p' "$DIR/log")
test -n "$USER_ID"

"$EMIGRE" stats --graph "$DIR/g.graph" > "$DIR/log" 2>&1
grep -q "Average Degree" "$DIR/log"

"$EMIGRE" recommend --graph "$DIR/g.graph" --user "$USER_ID" --top 3 \
    > "$DIR/log" 2>&1
ITEM_ID=$(sed -n '2s/.*\[\([0-9]*\)\].*/\1/p' "$DIR/log")
test -n "$ITEM_ID"

# explain returns 0 (found) or 3 (valid question, no explanation) — both
# are correct CLI behavior; anything else is a failure. --trace and
# --metrics-out must emit the span tree and a valid metrics JSON either way.
set +e
"$EMIGRE" explain --graph "$DIR/g.graph" --user "$USER_ID" \
    --item "$ITEM_ID" --mode auto --heuristic incremental \
    --trace --metrics-out "$DIR/m.json" > "$DIR/log" 2>&1
CODE=$?
set -e
test "$CODE" -eq 0 -o "$CODE" -eq 3
grep -q "== trace ==" "$DIR/log"
grep -q "explain.queries" "$DIR/log"
grep -q '"schema": "emigre.metrics.v1"' "$DIR/m.json"
grep -q '"trace"' "$DIR/m.json"

# --trace-out writes a Chrome trace (flight-recorder timeline) and
# --query-log appends one emigre.query.v1 JSONL record per Explain call,
# on the found and not-found paths alike.
set +e
"$EMIGRE" explain --graph "$DIR/g.graph" --user "$USER_ID" \
    --item "$ITEM_ID" --mode auto --heuristic incremental \
    --trace-out "$DIR/trace.json" --query-log "$DIR/q.jsonl" \
    > "$DIR/log" 2>&1
CODE=$?
set -e
test "$CODE" -eq 0 -o "$CODE" -eq 3
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"ph": "X"' "$DIR/trace.json"
grep -q '"schema": "emigre.query.v1"' "$DIR/q.jsonl"
grep -q '"heuristic": "Incremental"' "$DIR/q.jsonl"
# auto mode = 1 or 2 Explain attempts, each exactly one JSONL line
LINES=$(wc -l < "$DIR/q.jsonl")
test "$LINES" -ge 1 -a "$LINES" -le 2

# perfgate exit codes: 0 in-band, 1 regression, 2 usage error.
cat > "$DIR/base.json" <<'EOF'
{"schema": "emigre.bench.v1", "bench": "smoke", "scale": 0,
 "counters": {"smoke.events": 1000}, "gauges": {}, "histograms": {}}
EOF
sed 's/1000/1010/' "$DIR/base.json" > "$DIR/ok.json"
sed 's/1000/2000/' "$DIR/base.json" > "$DIR/bad.json"
"$EMIGRE" perfgate --baseline "$DIR/base.json" --current "$DIR/ok.json" \
    > "$DIR/log" 2>&1
grep -q "perfgate: PASS" "$DIR/log"
set +e
"$EMIGRE" perfgate --baseline "$DIR/base.json" --current "$DIR/bad.json" \
    > "$DIR/log" 2>&1; REGRESSION=$?
"$EMIGRE" perfgate --baseline "$DIR/base.json" 2>/dev/null; NOCURRENT=$?
"$EMIGRE" perfgate --baseline "$DIR/missing.json" \
    --current "$DIR/ok.json" 2>/dev/null; NOBASEFILE=$?
set -e
test "$REGRESSION" -eq 1
grep -q "smoke.events" "$DIR/log"
grep -q "perfgate: FAIL" "$DIR/log"
test "$NOCURRENT" -eq 2
test "$NOBASEFILE" -eq 2

# selfcheck runs the invariant validators against the built graph and must
# report zero violations; --metrics-out exposes the check.* counters.
"$EMIGRE" selfcheck --graph "$DIR/g.graph" --level full --samples 2 \
    --edits 2 --metrics-out "$DIR/sc.json" > "$DIR/log" 2>&1
grep -q "0 violation(s)" "$DIR/log"
grep -q "check.graph.pass" "$DIR/sc.json"
if "$EMIGRE" selfcheck --graph "$DIR/g.graph" --level bogus 2>/dev/null; then
  exit 1
fi

# Exit-code contract (tools/emigre_cli.cc): usage errors are 2, internal
# errors 1, no-explanation-found 3 (asserted above).
set +e
"$EMIGRE" 2>/dev/null; NOARGS=$?
"$EMIGRE" unknown-command 2>/dev/null; UNKNOWN=$?
"$EMIGRE" explain --bogus 2>/dev/null; BADFLAG=$?
"$EMIGRE" recommend --graph "$DIR/g.graph" --user -1 2>/dev/null; BADUSER=$?
"$EMIGRE" stats --graph "$DIR/does-not-exist.graph" 2>/dev/null; NOFILE=$?
set -e
test "$NOARGS" -eq 2
test "$UNKNOWN" -eq 2
test "$BADFLAG" -eq 2
test "$BADUSER" -eq 2
test "$NOFILE" -eq 1

# Binary dataset pipeline (docs/data_format.md): generate straight into
# emigre.bin.v1, inspect the directory, peek rows, convert across
# encodings, cut a CSR snapshot, and serve a query off the mmap.
"$EMIGRE" generate --users 25 --items 150 --categories 6 --seed 99 \
    --format bin --out "$DIR/ds.bin" > "$DIR/log" 2>&1
grep -q "dataset:" "$DIR/log"

# Bare inspect prints section stats without touching payloads.
"$EMIGRE" inspect --in "$DIR/ds.bin" > "$DIR/log" 2>&1
grep -q "emigre.bin.v1 dataset: 5 sections" "$DIR/log"
grep -q "section ratings:" "$DIR/log"

# --head prints a header line plus exactly N rows, indexed from 0.
"$EMIGRE" inspect --in "$DIR/ds.bin" --section ratings --head 3 \
    > "$DIR/head.txt" 2>&1
test "$(wc -l < "$DIR/head.txt")" -eq 4
sed -n '2p' "$DIR/head.txt" | grep -q "^0"

# --tail ends on the last row of the section (150 items -> index 149).
"$EMIGRE" inspect --in "$DIR/ds.bin" --section items --tail 2 \
    > "$DIR/tail.txt" 2>&1
test "$(wc -l < "$DIR/tail.txt")" -eq 3
sed -n '3p' "$DIR/tail.txt" | grep -q "^149"

# --sample is a seeded reservoir: same seed -> identical bytes, different
# seed -> a different draw.
"$EMIGRE" inspect --in "$DIR/ds.bin" --section ratings --sample 5 --seed 7 \
    > "$DIR/s1.txt" 2>&1
"$EMIGRE" inspect --in "$DIR/ds.bin" --section ratings --sample 5 --seed 7 \
    > "$DIR/s2.txt" 2>&1
"$EMIGRE" inspect --in "$DIR/ds.bin" --section ratings --sample 5 --seed 8 \
    > "$DIR/s3.txt" 2>&1
cmp -s "$DIR/s1.txt" "$DIR/s2.txt"
test "$(wc -l < "$DIR/s1.txt")" -eq 6
if cmp -s "$DIR/s1.txt" "$DIR/s3.txt"; then exit 1; fi

# Convert round trip: bin -> csv -> bin, then bin -> bin must be
# byte-stable (the binary encoding is exact; CSV is the lossy leg).
"$EMIGRE" convert --in "$DIR/ds.bin" --to csv --out "$DIR/ds-csv" \
    > "$DIR/log" 2>&1
grep -q "(csv)" "$DIR/log"
"$EMIGRE" convert --in "$DIR/ds-csv" --to bin --out "$DIR/ds2.bin" \
    > "$DIR/log" 2>&1
"$EMIGRE" convert --in "$DIR/ds2.bin" --to bin --out "$DIR/ds3.bin" \
    > "$DIR/log" 2>&1
cmp -s "$DIR/ds2.bin" "$DIR/ds3.bin"

# Snapshot: stream the binary dataset into emigre.csr.v1 and serve off it.
"$EMIGRE" convert --in "$DIR/ds.bin" --to snapshot --out "$DIR/ds.csr" \
    > "$DIR/log" 2>&1
grep -q "snapshot:" "$DIR/log"
"$EMIGRE" inspect --in "$DIR/ds.csr" > "$DIR/log" 2>&1
grep -q "emigre.csr.v1 snapshot:" "$DIR/log"
grep -q "backing: mmap" "$DIR/log"
"$EMIGRE" recommend --graph "$DIR/ds.csr" --user 0 --top 3 \
    > "$DIR/log" 2>&1
test -n "$(sed -n '2p' "$DIR/log")"

# Format exit codes: usage errors 2, missing/corrupt input 1.
head -c 100 "$DIR/ds.bin" > "$DIR/trunc.bin"
set +e
"$EMIGRE" convert --in "$DIR/ds.bin" --to parquet --out "$DIR/x" \
    2>/dev/null; BADTO=$?
"$EMIGRE" convert --in "$DIR/ds.bin" --to bin 2>/dev/null; NOOUT=$?
"$EMIGRE" inspect --in "$DIR/ds.bin" --section ratings 2>/dev/null; NOMODE=$?
"$EMIGRE" inspect --in "$DIR/missing.bin" 2>/dev/null; NOBIN=$?
"$EMIGRE" inspect --in "$DIR/ds.bin" --section bogus --head 1 \
    2>/dev/null; NOSECT=$?
"$EMIGRE" inspect --in "$DIR/trunc.bin" 2>/dev/null; TRUNC=$?
set -e
test "$BADTO" -eq 2
test "$NOOUT" -eq 2
test "$NOMODE" -eq 2
test "$NOBIN" -eq 1
test "$NOSECT" -eq 1
test "$TRUNC" -eq 1

# chaos runs in every build; without -DEMIGRE_FAULT_INJECTION=ON the sites
# are compiled out and it degenerates to a plain-pipeline soak.
"$EMIGRE" chaos --seeds 2 --queries 1 --users 20 --items 120 \
    > "$DIR/log" 2>&1
grep -q "chaos soak passed" "$DIR/log"

echo "cli smoke ok"
