#include "ppr/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "explain/emigre.h"
#include "explain/search_space.h"
#include "obs/metrics.h"
#include "ppr/reverse_push.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::ppr {
namespace {

using graph::HinGraph;
using graph::NodeId;

TEST(ReversePushCacheTest, ReturnsSameValuesAsDirectComputation) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  ReversePushCache<HinGraph> cache(bg.g, opts);

  for (NodeId target : {bg.harry_potter, bg.python, bg.candide}) {
    auto cached = cache.Get(target);
    std::vector<double> direct = ReversePush(bg.g, target, opts).estimate;
    // Sparse entry: stores exactly the nonzero estimates.
    size_t nonzeros = 0;
    for (double v : direct) nonzeros += v != 0.0 ? 1 : 0;
    EXPECT_EQ(cached->size(), nonzeros) << "target " << target;
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_DOUBLE_EQ(cached->Get(static_cast<NodeId>(i)), direct[i])
          << "target " << target;
    }
    std::vector<double> densified = cached->ToDense(direct.size());
    EXPECT_EQ(densified, direct) << "target " << target;
  }
}

TEST(ReversePushCacheTest, LegacyAndKernelEnginesAgree) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions legacy_opts;
  legacy_opts.engine = PushEngine::kLegacy;
  PprOptions kernel_opts;
  kernel_opts.engine = PushEngine::kKernel;
  ReversePushCache<HinGraph> legacy(bg.g, legacy_opts);
  ReversePushCache<HinGraph> kernel(bg.g, kernel_opts);
  for (NodeId target : {bg.harry_potter, bg.python, bg.candide}) {
    auto a = legacy.Get(target);
    auto b = kernel.Get(target);
    EXPECT_EQ(a->ids(), b->ids()) << "target " << target;
    EXPECT_EQ(a->values(), b->values()) << "target " << target;  // bitwise
  }
}

TEST(ReversePushCacheTest, BytesTrackResidentEntries) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{}, /*capacity=*/2);
  EXPECT_EQ(cache.bytes(), 0u);
  auto first = cache.Get(bg.harry_potter);
  EXPECT_EQ(cache.bytes(), first->MemoryBytes());
  auto second = cache.Get(bg.python);
  EXPECT_EQ(cache.bytes(), first->MemoryBytes() + second->MemoryBytes());
  // Sparse entries are far smaller than a dense |V| vector would be.
  EXPECT_LT(first->MemoryBytes() / sizeof(double), 2 * bg.g.NumNodes());
  cache.Get(bg.candide);  // evicts harry_potter (capacity 2)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LT(cache.bytes(),
            first->MemoryBytes() + second->MemoryBytes() +
                first->MemoryBytes() + 1);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ReversePushCacheTest, CountsHitsAndMisses) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{});
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  cache.Get(bg.python);
  cache.Get(bg.python);
  cache.Get(bg.candide);
  cache.Get(bg.python);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ReversePushCacheTest, EvictsLeastRecentlyUsed) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{}, /*capacity=*/2);
  cache.Get(bg.harry_potter);
  cache.Get(bg.python);
  cache.Get(bg.harry_potter);  // refresh HP
  cache.Get(bg.candide);       // evicts python (LRU)
  EXPECT_EQ(cache.size(), 2u);
  size_t misses_before = cache.misses();
  cache.Get(bg.harry_potter);  // still resident
  EXPECT_EQ(cache.misses(), misses_before);
  cache.Get(bg.python);  // evicted: recompute
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(ReversePushCacheTest, SharedPtrSurvivesEviction) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{}, /*capacity=*/1);
  auto kept = cache.Get(bg.harry_potter);
  cache.Get(bg.python);  // evicts HP
  // The held pointer remains valid and correct.
  std::vector<double> direct =
      ReversePush(bg.g, bg.harry_potter, PprOptions{}).estimate;
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(kept->Get(static_cast<NodeId>(i)), direct[i]);
  }
}

TEST(ReversePushCacheTest, ClearEmptiesCache) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{});
  cache.Get(bg.python);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  size_t misses_before = cache.misses();
  cache.Get(bg.python);
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(ReversePushCacheTest, ConcurrentAccessIsConsistent) {
  Rng rng(404);
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 20, 3, 6);
  PprOptions opts;
  ReversePushCache<HinGraph> cache(rh.g, opts, /*capacity=*/8);

  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng local(1000 + t);
      for (int i = 0; i < 40; ++i) {
        NodeId target = rh.items[local.NextBounded(rh.items.size())];
        auto cached = cache.Get(target);
        std::vector<double> direct =
            ReversePush(rh.g, target, opts).estimate;
        for (size_t k = 0; k < direct.size(); ++k) {
          if (cached->Get(static_cast<NodeId>(k)) != direct[k]) {
            mismatch.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(ReversePushCacheTest, ConcurrentDuplicateFillsCountOneMiss) {
  // Many threads request the SAME cold target at once. All of them miss the
  // first lookup and recompute, but only the installer may count a miss;
  // the losers must surface as races, never as extra misses — and every
  // Get must be exactly one of hit / miss / race.
  test::BookGraph bg = test::MakeBookGraph();
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    ReversePushCache<HinGraph> cache(bg.g, PprOptions{});
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        // Crude start barrier to maximize the duplicate-computation window.
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }
        auto v = cache.Get(bg.harry_potter);
        EXPECT_FALSE(v->empty());
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.misses(), 1u) << "round " << round;
    EXPECT_EQ(cache.hits() + cache.misses() + cache.races(),
              static_cast<size_t>(kThreads))
        << "round " << round;
    EXPECT_EQ(cache.size(), 1u);
  }
}

TEST(ReversePushCacheTest, RacesStayZeroWhenSingleThreaded) {
  test::BookGraph bg = test::MakeBookGraph();
  ReversePushCache<HinGraph> cache(bg.g, PprOptions{});
  cache.Get(bg.python);
  cache.Get(bg.python);
  cache.Get(bg.candide);
  EXPECT_EQ(cache.races(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

// GetBatch accounting must be serial-Get-equivalent: each position of the
// target list is exactly one hit / miss / race, a unique missing target
// counts ONE miss even when its column came from the shared batched push,
// and duplicates of a missing target count as the follow-up hits they
// replace.
TEST(ReversePushCacheTest, GetBatchAccountingMatchesSerialGets) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.engine = PushEngine::kFast;  // batch kernel path for 2+ misses
  ReversePushCache<HinGraph> cache(bg.g, opts);

  // Warm one target the batch will then hit.
  cache.Get(bg.harry_potter);
  ASSERT_EQ(cache.misses(), 1u);

  std::vector<NodeId> targets = {bg.harry_potter, bg.python, bg.candide,
                                 bg.python, bg.harry_potter};
  auto out = cache.GetBatch(targets);
  ASSERT_EQ(out.size(), targets.size());
  for (const auto& v : out) ASSERT_NE(v, nullptr);

  // Serial equivalent of the batch: hit, miss, miss, hit, hit.
  EXPECT_EQ(cache.misses(), 3u);  // harry warm-up + python + candide
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.races(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses() + cache.races(),
            targets.size() + 1);  // one bucket per Get position
  EXPECT_EQ(cache.size(), 3u);

  // Duplicate positions share the installed vector.
  EXPECT_EQ(out[1], out[3]);
  EXPECT_EQ(out[0], out[4]);

  // Batch-installed columns ARE the cache entries afterwards.
  EXPECT_EQ(cache.Get(bg.python), out[1]);
  EXPECT_EQ(cache.Get(bg.candide), out[2]);
  EXPECT_EQ(cache.misses(), 3u);  // both follow-ups hit
}

TEST(ReversePushCacheTest, GetBatchColumnsMatchSingleTargetComputation) {
  // A batched kFast column is not bitwise identical to a single-target
  // push, but both are Eq. 4-accurate: per-source estimates agree within
  // push noise of the legacy dense reverse push.
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.engine = PushEngine::kFast;
  ReversePushCache<HinGraph> cache(bg.g, opts);

  std::vector<NodeId> targets = {bg.harry_potter, bg.python, bg.candide};
  auto out = cache.GetBatch(targets);
  for (size_t c = 0; c < targets.size(); ++c) {
    PprOptions legacy = opts;
    legacy.engine = PushEngine::kLegacy;
    std::vector<double> dense = ReversePush(bg.g, targets[c], legacy).estimate;
    for (NodeId s = 0; s < bg.g.NumNodes(); ++s) {
      EXPECT_NEAR(out[c]->Get(s), dense[s], 10.0 * opts.epsilon)
          << "target " << targets[c] << " source " << s;
    }
  }
}

TEST(ReversePushCacheTest, GetBatchMaintainsBytesAndGauge) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.engine = PushEngine::kFast;
  ReversePushCache<HinGraph> cache(bg.g, opts);

  std::vector<NodeId> targets = {bg.harry_potter, bg.python, bg.candide};
  auto out = cache.GetBatch(targets);

  size_t expected = 0;
  for (const auto& v : out) expected += v->MemoryBytes();
  EXPECT_GT(cache.bytes(), 0u);
  EXPECT_EQ(cache.bytes(), expected);
  // The resident-bytes gauge tracks the same accounting.
  EXPECT_EQ(obs::Registry::Global().GetGauge("ppr.cache.bytes").Value(),
            static_cast<double>(cache.bytes()));

  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(obs::Registry::Global().GetGauge("ppr.cache.bytes").Value(), 0.0);
}

TEST(ReversePushCacheTest, EmigreResultsUnchangedByCache) {
  // The facade uses the cache internally; its outputs must be identical to
  // bypassing it (search_space called directly, no cache).
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  explain::Emigre engine(f.g, f.opts);

  auto direct_space = explain::BuildRemoveSearchSpace(
      f.g, f.user, engine.CurrentRanking(f.user).Top(), f.wni, f.opts,
      nullptr);
  ASSERT_TRUE(direct_space.ok());

  auto r1 = engine.Explain(explain::WhyNotQuestion{f.user, f.wni},
                           explain::Mode::kRemove,
                           explain::Heuristic::kPowerset);
  auto r2 = engine.Explain(explain::WhyNotQuestion{f.user, f.wni},
                           explain::Mode::kRemove,
                           explain::Heuristic::kPowerset);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->found, r2->found);
  EXPECT_EQ(r1->edges, r2->edges);
  // The second identical question hit the cache.
  EXPECT_GT(engine.ppr_cache().hits(), 0u);
}

}  // namespace
}  // namespace emigre::ppr
