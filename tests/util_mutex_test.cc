#include "util/mutex.h"

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace emigre::util {
namespace {

TEST(MutexTest, LockUnlock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Already held (by this thread): a second TryLock must fail. Probe from
  // another thread — std::mutex makes same-thread re-try undefined.
  bool second = true;
  std::thread probe([&] { second = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCounterAcrossThreads) {
  Mutex mu;
  size_t count GUARDED_BY(mu) = 0;
  constexpr size_t kThreads = 4;
  constexpr size_t kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++count;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(count, kThreads * kIters);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  bool observed = false;

  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    observed = ready;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go GUARDED_BY(mu) = false;
  std::atomic<size_t> woke{0};
  constexpr size_t kWaiters = 3;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

// A producer/consumer queue mirroring ThreadPool's wait pattern: MutexLock
// RAII + CondVar::Wait in a predicate loop. This is the composition the
// pool relies on (tools/check.sh runs this test under TSan too).
TEST(CondVarTest, ProducerConsumerHandoff) {
  Mutex mu;
  CondVar item_ready;
  std::vector<int> queue GUARDED_BY(mu);
  bool done GUARDED_BY(mu) = false;
  constexpr int kItems = 1000;

  size_t consumed = 0;
  int sum = 0;
  std::thread consumer([&] {
    for (;;) {
      int item;
      {
        MutexLock lock(&mu);
        while (queue.empty() && !done) item_ready.Wait(mu);
        if (queue.empty()) return;
        item = queue.back();
        queue.pop_back();
      }
      ++consumed;
      sum += item;
    }
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(&mu);
      queue.push_back(i);
    }
    item_ready.NotifyOne();
  }
  {
    MutexLock lock(&mu);
    done = true;
  }
  item_ready.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed, static_cast<size_t>(kItems));
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

// The pool is the heaviest consumer of the annotated Mutex/CondVar pair;
// exercise its full submit/wait/shutdown cycle through the wrappers.
TEST(CondVarTest, ThreadPoolComposesWithAnnotatedMutex) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    ASSERT_TRUE(pool.Wait().ok());
  }
  EXPECT_EQ(ran.load(), 150u);
}

}  // namespace
}  // namespace emigre::util
