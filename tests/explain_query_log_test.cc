// Tests for the per-query audit log wiring: `Emigre::Explain` with
// `EmigreOptions::query_log` set appends one emigre.query.v1 record per
// call, and a query replayed from a record alone (same question, mode,
// heuristic and budgets) reproduces the logged explanation edge set.

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "explain/emigre.h"
#include "gtest/gtest.h"
#include "obs/query_log.h"
#include "test_util.h"

namespace emigre::explain {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool ModeFromName(const std::string& name, Mode* mode) {
  for (Mode m : {Mode::kRemove, Mode::kAdd}) {
    if (name == ModeName(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

bool HeuristicFromName(const std::string& name, Heuristic* heuristic) {
  for (Heuristic h : {Heuristic::kIncremental, Heuristic::kPowerset,
                      Heuristic::kExhaustive, Heuristic::kExhaustiveDirect,
                      Heuristic::kBruteForce}) {
    if (name == HeuristicName(h)) {
      *heuristic = h;
      return true;
    }
  }
  return false;
}

/// Opens a fresh log in its own temp dir and returns (log, path).
std::unique_ptr<obs::QueryLog> OpenLog(const std::string& tag,
                                       std::string* path) {
  *path = test::MakeTempDir(tag) + "/queries.jsonl";
  Result<std::unique_ptr<obs::QueryLog>> log = obs::QueryLog::Open(*path);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return log.ok() ? std::move(*log) : nullptr;
}

TEST(QueryLogWiringTest, ExplainAppendsOneRecordPerCall) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  std::string path;
  std::unique_ptr<obs::QueryLog> log = OpenLog("query_log_wiring", &path);
  ASSERT_NE(log, nullptr);
  f.opts.query_log = log.get();
  Emigre engine(f.g, f.opts);

  Result<Explanation> removal = engine.Explain(
      WhyNotQuestion{f.user, f.wni}, Mode::kRemove, Heuristic::kIncremental);
  ASSERT_TRUE(removal.ok()) << removal.status().ToString();
  ASSERT_TRUE(removal->found);
  Result<Explanation> addition = engine.Explain(
      WhyNotQuestion{f.user, f.wni}, Mode::kAdd, Heuristic::kPowerset);
  ASSERT_TRUE(addition.ok()) << addition.status().ToString();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);

  Result<obs::QueryRecord> first = obs::ParseQueryRecord(lines[0]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->query_id, removal->query_id);
  EXPECT_EQ(first->user, f.user);
  EXPECT_EQ(first->why_not_item, f.wni);
  EXPECT_EQ(first->mode, "remove");
  EXPECT_EQ(first->heuristic, "Incremental");
  EXPECT_EQ(first->heuristic_chain,
            (std::vector<std::string>{"remove/Incremental"}));
  EXPECT_TRUE(first->found);
  EXPECT_EQ(first->failure, "none");
  EXPECT_EQ(first->edges.size(), removal->edges.size());
  EXPECT_EQ(first->tests_performed, removal->tests_performed);
  EXPECT_GT(first->seconds, 0.0);
  // All three pipeline phases reported a wall time.
  ASSERT_EQ(first->phase_seconds.size(), 3u);
  EXPECT_EQ(first->phase_seconds[0].first, "ranking");
  EXPECT_EQ(first->phase_seconds[1].first, "search_space");
  EXPECT_EQ(first->phase_seconds[2].first, "heuristic");

  Result<obs::QueryRecord> second = obs::ParseQueryRecord(lines[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->query_id, addition->query_id);
  EXPECT_GT(second->query_id, first->query_id);
  EXPECT_EQ(second->mode, "add");
  EXPECT_EQ(second->heuristic, "Powerset");
}

TEST(QueryLogWiringTest, InvalidQuestionLogsErrorRecord) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  std::string path;
  std::unique_ptr<obs::QueryLog> log = OpenLog("query_log_invalid", &path);
  ASSERT_NE(log, nullptr);
  opts.query_log = log.get();
  Emigre engine(bg.g, opts);

  // fantasy is a category node, not an item: Definition 4.1 violation.
  Result<Explanation> r = engine.Explain(
      WhyNotQuestion{bg.paul, bg.fantasy}, Mode::kAdd,
      Heuristic::kIncremental);
  ASSERT_TRUE(r.status().IsInvalidArgument());

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::QueryRecord> record = obs::ParseQueryRecord(lines[0]);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_FALSE(record->found);
  EXPECT_EQ(record->failure, "invalid-question");
  EXPECT_NE(record->error.find("not an item"), std::string::npos)
      << record->error;
}

/// The acceptance scenario: run a query with the log attached, then rebuild
/// the question, mode, heuristic and budgets purely from the logged record
/// and re-run on a fresh engine — the replay must reproduce the logged
/// explanation edge set exactly (the pipeline is deterministic at any
/// test_threads setting).
void RunReplayCase(size_t test_threads, const std::string& tag) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  f.opts.test_threads = test_threads;
  std::string path;
  std::unique_ptr<obs::QueryLog> log = OpenLog(tag, &path);
  ASSERT_NE(log, nullptr);
  f.opts.query_log = log.get();
  Emigre engine(f.g, f.opts);
  Result<Explanation> original = engine.Explain(
      WhyNotQuestion{f.user, f.wni}, Mode::kRemove, Heuristic::kIncremental);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE(original->found);
  ASSERT_FALSE(original->edges.empty());

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::QueryRecord> parsed = obs::ParseQueryRecord(lines[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::QueryRecord& record = *parsed;

  Mode mode;
  ASSERT_TRUE(ModeFromName(record.mode, &mode));
  Heuristic heuristic;
  ASSERT_TRUE(HeuristicFromName(record.heuristic, &heuristic));

  // Deployment config (graph, action vocabulary) comes from the fixture;
  // everything the record audits — question, mode, heuristic, budgets —
  // comes from the record alone.
  EmigreOptions replay_opts = test::MakeRemoveFriendlyCase().opts;
  replay_opts.deadline_seconds = record.deadline_seconds;
  replay_opts.max_tests = record.max_tests;
  replay_opts.test_threads = record.test_threads;
  replay_opts.anytime = record.anytime;
  replay_opts.tester = record.tester == "dynamic_push"
                           ? TesterKind::kDynamicPush
                           : TesterKind::kExact;
  Emigre replay_engine(f.g, replay_opts);
  Result<Explanation> replay = replay_engine.Explain(
      WhyNotQuestion{static_cast<graph::NodeId>(record.user),
                     static_cast<graph::NodeId>(record.why_not_item)},
      mode, heuristic);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(replay->found);
  ASSERT_EQ(replay->edges.size(), record.edges.size());
  for (size_t i = 0; i < record.edges.size(); ++i) {
    EXPECT_EQ(replay->edges[i].src, record.edges[i].src);
    EXPECT_EQ(replay->edges[i].dst, record.edges[i].dst);
    EXPECT_EQ(replay->edges[i].type, record.edges[i].type);
  }
  EXPECT_EQ(replay->new_rec, record.new_rec);
}

TEST(QueryLogReplayTest, ReplayFromRecordReproducesEdgeSet) {
  RunReplayCase(1, "query_log_replay_serial");
}

TEST(QueryLogReplayTest, ReplayFromRecordReproducesEdgeSetParallel) {
  RunReplayCase(2, "query_log_replay_parallel");
}

}  // namespace
}  // namespace emigre::explain
