#include <gtest/gtest.h>

#include "explain/brute_force.h"
#include "explain/emigre.h"
#include "explain/exhaustive.h"
#include "explain/incremental.h"
#include "explain/powerset.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

/// Independently re-verifies a found explanation: applying its edges must
/// make the Why-Not item the top recommendation.
void ExpectExplanationCorrect(const graph::HinGraph& g, NodeId user,
                              NodeId wni, const Explanation& e,
                              const EmigreOptions& opts) {
  ASSERT_TRUE(e.found);
  ASSERT_FALSE(e.edges.empty());
  ExplanationTester checker(g, user, wni, opts);
  EXPECT_TRUE(checker.Test(e.edges, e.mode))
      << "explanation of size " << e.size() << " in "
      << ModeName(e.mode) << " mode does not verify";
}

class HeuristicsBookTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bg_ = test::MakeBookGraph();
    opts_ = test::MakeBookOptions(bg_);
    engine_ = std::make_unique<Emigre>(bg_.g, opts_);
    ranking_ = engine_->CurrentRanking(bg_.paul);
    ASSERT_GE(ranking_.size(), 2u);
    rec_ = ranking_.Top();
    wni_ = ranking_.at(1).item;  // the runner-up as the Why-Not item
  }

  Explanation Run(Mode mode, Heuristic h) {
    Result<Explanation> r =
        engine_->Explain(WhyNotQuestion{bg_.paul, wni_}, mode, h);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r.value() : Explanation{};
  }

  test::BookGraph bg_;
  EmigreOptions opts_;
  std::unique_ptr<Emigre> engine_;
  recsys::RecommendationList ranking_;
  NodeId rec_ = graph::kInvalidNode;
  NodeId wni_ = graph::kInvalidNode;
};

// On the crafted Add-friendly case every search strategy must succeed in
// both modes with a single-edge explanation.
TEST(HeuristicsCraftedTest, AddFriendlyCaseSolvedByAllStrategies) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  Emigre engine(f.g, f.opts);
  for (Heuristic h : {Heuristic::kIncremental, Heuristic::kPowerset,
                      Heuristic::kExhaustive, Heuristic::kBruteForce}) {
    Result<Explanation> r =
        engine.Explain(WhyNotQuestion{f.user, f.wni}, Mode::kAdd, h);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->found) << HeuristicName(h) << ": "
                          << FailureReasonName(r->failure);
    EXPECT_TRUE(r->verified);
    EXPECT_EQ(r->new_rec, f.wni);
    ExpectExplanationCorrect(f.g, f.user, f.wni, r.value(), f.opts);
  }
}

TEST(HeuristicsCraftedTest, RemoveFriendlyCaseSolvedByAllStrategies) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Emigre engine(f.g, f.opts);
  for (Heuristic h : {Heuristic::kIncremental, Heuristic::kPowerset,
                      Heuristic::kExhaustive, Heuristic::kBruteForce}) {
    Result<Explanation> r =
        engine.Explain(WhyNotQuestion{f.user, f.wni}, Mode::kRemove, h);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->found) << HeuristicName(h) << ": "
                          << FailureReasonName(r->failure);
    EXPECT_TRUE(r->verified);
    ExpectExplanationCorrect(f.g, f.user, f.wni, r.value(), f.opts);
    // The crafted conduit is a single edge; size-optimizing searches find
    // exactly it.
    if (h != Heuristic::kIncremental) {
      EXPECT_EQ(r->size(), 1u);
    }
  }
}

TEST(HeuristicsCraftedTest, PowersetNoLargerThanIncremental) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  Emigre engine(f.g, f.opts);
  Result<Explanation> inc = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                           Mode::kAdd,
                                           Heuristic::kIncremental);
  Result<Explanation> pow = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                           Mode::kAdd, Heuristic::kPowerset);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(pow.ok());
  ASSERT_TRUE(inc->found);
  ASSERT_TRUE(pow->found);
  EXPECT_LE(pow->size(), inc->size());
}

TEST_F(HeuristicsBookTest, AddExhaustiveVerifiesWhenItFinds) {
  Explanation e = Run(Mode::kAdd, Heuristic::kExhaustive);
  if (e.found) {
    EXPECT_TRUE(e.verified);
    ExpectExplanationCorrect(bg_.g, bg_.paul, wni_, e, opts_);
  }
}

TEST_F(HeuristicsBookTest, RemoveHeuristicsAgreeWithBruteForceOracle) {
  Explanation brute = Run(Mode::kRemove, Heuristic::kBruteForce);
  Explanation powerset = Run(Mode::kRemove, Heuristic::kPowerset);
  Explanation exhaustive = Run(Mode::kRemove, Heuristic::kExhaustive);

  if (brute.found) {
    ExpectExplanationCorrect(bg_.g, bg_.paul, wni_, brute, opts_);
    // Brute force finds a minimum-size explanation.
    if (powerset.found) {
      EXPECT_LE(brute.size(), powerset.size());
    }
    if (exhaustive.found) {
      EXPECT_LE(brute.size(), exhaustive.size());
    }
  } else {
    // The oracle says no Remove explanation exists (within caps): the
    // pruned searches must not claim success either.
    EXPECT_FALSE(powerset.found);
    EXPECT_FALSE(exhaustive.found);
  }
}

TEST_F(HeuristicsBookTest, DirectReturnsUnverifiedCandidates) {
  Explanation direct = Run(Mode::kRemove, Heuristic::kExhaustiveDirect);
  if (direct.found) {
    EXPECT_FALSE(direct.verified);
    EXPECT_EQ(direct.tests_performed, 0u);
  }
}

TEST(HeuristicsCraftedTest, StatsArePopulated) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  Emigre engine(f.g, f.opts);
  Result<Explanation> r = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                         Mode::kAdd,
                                         Heuristic::kIncremental);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->search_space_size, 0u);
  EXPECT_GT(r->candidates_considered, 0u);
  EXPECT_GE(r->seconds, 0.0);
  ASSERT_TRUE(r->found);
  EXPECT_GE(r->tests_performed, 1u);
}

TEST_F(HeuristicsBookTest, ColdStartUserReportsColdStart) {
  // A brand-new user with no actions at all.
  NodeId newbie = bg_.g.AddNode(bg_.user_type, "Newbie");
  Emigre engine(bg_.g, opts_);
  // The recommender has no signal; any item question is answerable only in
  // Add mode, and Remove mode must report a cold start.
  Result<Explanation> r = engine.Explain(
      WhyNotQuestion{newbie, bg_.lotr}, Mode::kRemove,
      Heuristic::kIncremental);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->failure, FailureReason::kColdStart);
}

TEST(HeuristicsCraftedTest, BudgetCapReportsBudgetExceeded) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  EmigreOptions tight = f.opts;
  tight.max_tests = 0;            // unlimited tests ...
  tight.deadline_seconds = 1e-9;  // ... but no time at all
  Emigre engine(f.g, tight);
  Result<Explanation> r = engine.Explain(WhyNotQuestion{f.user, f.wni},
                                         Mode::kAdd, Heuristic::kPowerset);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->failure, FailureReason::kBudgetExceeded);
}

// ---------------------------------------------------------------------------
// Property sweep over random graphs: every explanation any heuristic
// returns as verified must actually flip the recommendation to the WNI.
// ---------------------------------------------------------------------------
class HeuristicsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeuristicsPropertyTest, AllFoundExplanationsVerify) {
  Rng rng(GetParam());
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 18, 3, 5);
  EmigreOptions opts = test::MakeRandomHinOptions(rh);
  Emigre engine(rh.g, opts);

  for (NodeId user : rh.users) {
    recsys::RecommendationList ranking = engine.CurrentRanking(user);
    if (ranking.size() < 3) continue;
    // Ask about the 2nd and last-ranked items.
    for (size_t rank : {size_t{1}, ranking.size() - 1}) {
      NodeId wni = ranking.at(rank).item;
      for (Mode mode : {Mode::kRemove, Mode::kAdd}) {
        for (Heuristic h :
             {Heuristic::kIncremental, Heuristic::kPowerset,
              Heuristic::kExhaustive, Heuristic::kBruteForce}) {
          Result<Explanation> r =
              engine.Explain(WhyNotQuestion{user, wni}, mode, h);
          ASSERT_TRUE(r.ok()) << r.status();
          if (r->found) {
            EXPECT_TRUE(r->verified);
            ExpectExplanationCorrect(rh.g, user, wni, r.value(), opts);
            EXPECT_EQ(r->new_rec, wni);
          }
        }
      }
    }
    break;  // one user per seed keeps the sweep fast; seeds vary users
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicsPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Oracle-dominance property: on scenarios where size-capped searches find
// explanations, brute force (same caps) must find one at most as large.
TEST(HeuristicsOracleTest, BruteForceDominatesPrunedSearches) {
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 15, 3, 4);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    Emigre engine(rh.g, opts);
    NodeId user = rh.users[0];
    recsys::RecommendationList ranking = engine.CurrentRanking(user);
    if (ranking.size() < 2) continue;
    NodeId wni = ranking.at(1).item;

    Result<Explanation> brute = engine.Explain(
        WhyNotQuestion{user, wni}, Mode::kRemove, Heuristic::kBruteForce);
    ASSERT_TRUE(brute.ok());
    for (Heuristic h : {Heuristic::kPowerset, Heuristic::kExhaustive}) {
      Result<Explanation> other =
          engine.Explain(WhyNotQuestion{user, wni}, Mode::kRemove, h);
      ASSERT_TRUE(other.ok());
      if (other->found) {
        ASSERT_TRUE(brute->found)
            << "pruned search found an explanation the oracle missed";
        EXPECT_LE(brute->size(), other->size());
      }
    }
  }
}

}  // namespace
}  // namespace emigre::explain
