#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace emigre::json {
namespace {

std::string ParsedString(const std::string& doc) {
  Result<JsonValue> v = Parse(doc);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  if (!v.ok()) return "";
  EXPECT_EQ(v->kind, JsonValue::Kind::kString);
  return v->string;
}

TEST(JsonStringTest, BasicEscapes) {
  EXPECT_EQ(ParsedString(R"("a\nb\tc\"d\\e\/f")"), "a\nb\tc\"d\\e/f");
}

TEST(JsonStringTest, BmpUnicodeEscapes) {
  EXPECT_EQ(ParsedString(R"("A")"), "A");
  EXPECT_EQ(ParsedString(R"("\u00e9")"), "\xC3\xA9");      // é
  EXPECT_EQ(ParsedString(R"("\u20ac")"), "\xE2\x82\xAC");  // €
  EXPECT_EQ(ParsedString(R"("\ufffd")"), "\xEF\xBF\xBD");  // U+FFFD
}

// The regression this file exists for: a surrogate pair must decode to ONE
// 4-byte UTF-8 code point. The old decoder emitted each half's 3-byte
// encoding separately (CESU-8: ED A0 BD ED B8 80 for U+1F600), which
// strict UTF-8 consumers reject.
TEST(JsonStringTest, SurrogatePairDecodesToFourByteUtf8) {
  std::string grin = ParsedString(R"("\ud83d\ude00")");  // U+1F600 😀
  EXPECT_EQ(grin, "\xF0\x9F\x98\x80");
  ASSERT_EQ(grin.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(grin[0]), 0xF0u);  // not CESU-8 0xED

  // Uppercase hex, pair embedded in surrounding text.
  EXPECT_EQ(ParsedString(R"("x\uD834\uDD1Ey")"),
            "x\xF0\x9D\x84\x9Ey");  // U+1D11E MUSICAL SYMBOL G CLEF
}

TEST(JsonStringTest, RawUtf8BytesPassThroughUnchanged) {
  // Already-encoded UTF-8 in the document body is not escape-processed.
  EXPECT_EQ(ParsedString("\"\xF0\x9F\x98\x80\""), "\xF0\x9F\x98\x80");
}

TEST(JsonStringTest, LoneSurrogatesAreErrors) {
  EXPECT_FALSE(Parse(R"("\ud83d")").ok());    // unpaired high at end
  EXPECT_FALSE(Parse(R"("\ud83dx")").ok());   // high followed by text
  EXPECT_FALSE(Parse(R"("\ud83d\n")").ok());  // high + non-\u escape
  EXPECT_FALSE(Parse(R"("\ud83dA")").ok());  // high + non-low escape
  EXPECT_FALSE(Parse(R"("\ude00")").ok());    // low without high
}

TEST(JsonStringTest, TruncatedAndBadEscapes) {
  EXPECT_FALSE(Parse(R"("\u12")").ok());
  EXPECT_FALSE(Parse(R"("\u12gz")").ok());
  EXPECT_FALSE(Parse(R"("\ud83d\ud")").ok());
  EXPECT_FALSE(Parse(R"("\q")").ok());
}

// Escape passes UTF-8 bytes through raw, so decode -> Escape -> decode must
// be the identity on the decoded value (the emitter never re-introduces
// CESU-8).
TEST(JsonStringTest, SurrogatePairRoundTrip) {
  std::string decoded = ParsedString(R"("\ud83d\ude00 ok \u20ac")");
  EXPECT_EQ(decoded, "\xF0\x9F\x98\x80 ok \xE2\x82\xAC");
  std::string re_encoded = Escape(decoded);
  EXPECT_EQ(ParsedString(re_encoded), decoded);
}

TEST(JsonStringTest, EscapeRoundTripsControlCharacters) {
  std::string s = "line\nwith\ttabs \x01 and \x1f";
  EXPECT_EQ(ParsedString(Escape(s)), s);
}

TEST(JsonValueTest, DocumentRoundTrip) {
  const std::string doc =
      R"({"name":"\ud83d\ude00","n":12345678901234567890,"f":0.25,)"
      R"("flag":true,"none":null,"arr":[1,"two",false]})";
  Result<JsonValue> v = Parse(doc);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(StringOr(*v, "name"), "\xF0\x9F\x98\x80");
  EXPECT_EQ(UintOr(*v, "n"), 12345678901234567890ull);
  EXPECT_EQ(DoubleOr(*v, "f"), 0.25);
  EXPECT_TRUE(BoolOr(*v, "flag", false));
  const JsonValue* arr = v->Find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_EQ(arr->array[1].string, "two");
}

}  // namespace
}  // namespace emigre::json
