// Tests for src/obs/trace.h: span nesting, disabled-mode no-op behavior,
// and the rendered trace tree.

#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace emigre::obs {
namespace {

/// RAII guard: every test leaves tracing disabled and the store empty, so
/// test order cannot matter.
struct TraceGuard {
  TraceGuard() {
    SetTracingEnabled(false);
    ResetTrace();
  }
  ~TraceGuard() {
    SetTracingEnabled(false);
    ResetTrace();
  }
};

const SpanStat* Find(const std::vector<SpanStat>& stats,
                     const std::string& path) {
  for (const SpanStat& s : stats) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceGuard guard;
  {
    EMIGRE_SPAN("outer");
    EMIGRE_SPAN("inner");
  }
  EXPECT_TRUE(TraceSnapshot().empty());
}

TEST(TraceTest, NestedSpansBuildSlashPaths) {
  TraceGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("outer");
    {
      Span inner("inner");
      { Span leaf("leaf"); }
    }
    { Span inner2("inner"); }
  }
  std::vector<SpanStat> stats = TraceSnapshot();
  const SpanStat* outer = Find(stats, "outer");
  const SpanStat* inner = Find(stats, "outer/inner");
  const SpanStat* leaf = Find(stats, "outer/inner/leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inner->count, 2u);  // two "inner" spans aggregated on one path
  EXPECT_EQ(leaf->depth, 2);
  EXPECT_EQ(leaf->count, 1u);
  // A child's total time is contained in its parent's.
  EXPECT_LE(leaf->total_seconds, inner->total_seconds);
  EXPECT_LE(inner->total_seconds, outer->total_seconds);
}

TEST(TraceTest, SnapshotSortedByPath) {
  TraceGuard guard;
  SetTracingEnabled(true);
  { Span b("zeta"); }
  { Span a("alpha"); }
  std::vector<SpanStat> stats = TraceSnapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "alpha");
  EXPECT_EQ(stats[1].path, "zeta");
}

TEST(TraceTest, SpansOnSeparateThreadsDoNotNestIntoEachOther) {
  TraceGuard guard;
  SetTracingEnabled(true);
  Span outer("outer");
  std::thread worker([] { Span inner("worker_span"); });
  worker.join();
  std::vector<SpanStat> stats = TraceSnapshot();
  // The worker's stack is its own: its span is a root, not "outer/...".
  EXPECT_NE(Find(stats, "worker_span"), nullptr);
  EXPECT_EQ(Find(stats, "outer/worker_span"), nullptr);
}

TEST(TraceTest, EnablingMidSpanOnlyAffectsNewSpans) {
  TraceGuard guard;
  Span outer("outer");  // constructed while disabled: inert
  SetTracingEnabled(true);
  { Span inner("inner"); }
  std::vector<SpanStat> stats = TraceSnapshot();
  // The inert outer span is invisible, so "inner" is a root path.
  EXPECT_NE(Find(stats, "inner"), nullptr);
  EXPECT_EQ(Find(stats, "outer/inner"), nullptr);
  EXPECT_EQ(Find(stats, "outer"), nullptr);
}

TEST(TraceTest, ResetClearsAggregates) {
  TraceGuard guard;
  SetTracingEnabled(true);
  { EMIGRE_SPAN("ephemeral"); }
  EXPECT_FALSE(TraceSnapshot().empty());
  ResetTrace();
  EXPECT_TRUE(TraceSnapshot().empty());
  // The enabled flag survives a reset.
  EXPECT_TRUE(TracingEnabled());
}

TEST(TraceTest, FormatTraceTreeShowsIndentedSpans) {
  TraceGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("query");
    { Span inner("push"); }
  }
  std::string tree = FormatTraceTree(TraceSnapshot());
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("  push"), std::string::npos);  // indented child
  EXPECT_NE(tree.find("calls"), std::string::npos);
  EXPECT_EQ(FormatTraceTree({}), "(no spans recorded)\n");
}

}  // namespace
}  // namespace emigre::obs
