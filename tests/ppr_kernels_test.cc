#include "ppr/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "check/invariants.h"
#include "graph/csr.h"
#include "graph/csr_overlay.h"
#include "graph/overlay.h"
#include "ppr/dynamic.h"
#include "ppr/forward_push.h"
#include "ppr/power_iteration.h"
#include "ppr/reverse_push.h"
#include "ppr/workspace.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::ppr {
namespace {

using graph::CsrGraph;
using graph::CsrOverlay;
using graph::EdgeTypeId;
using graph::GraphOverlay;
using graph::HinGraph;
using graph::NodeId;

// ---------------------------------------------------------------------------
// SparseVector

TEST(SparseVectorTest, GetAndToDense) {
  SparseVector v({1, 4, 7}, {0.5, -2.0, 3.25});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.empty());
  EXPECT_DOUBLE_EQ(v.Get(1), 0.5);
  EXPECT_DOUBLE_EQ(v.Get(4), -2.0);
  EXPECT_DOUBLE_EQ(v.Get(7), 3.25);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(100), 0.0);
  std::vector<double> dense = v.ToDense(9);
  ASSERT_EQ(dense.size(), 9u);
  EXPECT_DOUBLE_EQ(dense[1], 0.5);
  EXPECT_DOUBLE_EQ(dense[4], -2.0);
  EXPECT_DOUBLE_EQ(dense[7], 3.25);
  EXPECT_DOUBLE_EQ(dense[0], 0.0);
  // Entries beyond the requested dense size are dropped, not a crash.
  EXPECT_EQ(v.ToDense(4).size(), 4u);
  EXPECT_GT(v.MemoryBytes(), 0u);
  EXPECT_TRUE(SparseVector().empty());
}

// ---------------------------------------------------------------------------
// Kernel vs. legacy equivalence (bitwise)

// Runs both engines and requires *bitwise* identical estimates/residuals:
// the kernels replay the exact legacy push schedule and float-op order.
template <typename G>
void ExpectForwardBitwiseEqual(const G& g, NodeId source,
                               const PprOptions& opts, PushWorkspace& ws) {
  PushResult legacy = ForwardPush(g, source, opts);
  KernelResult kr = ForwardPushKernel(g, source, opts, ws);
  PushResult kernel = ExportDensePush(ws, g.NumNodes(), kr.residual_mass);
  ASSERT_EQ(kernel.estimate.size(), legacy.estimate.size());
  for (size_t v = 0; v < legacy.estimate.size(); ++v) {
    ASSERT_EQ(kernel.estimate[v], legacy.estimate[v])
        << "estimate diverges at node " << v << " (source " << source << ")";
    ASSERT_EQ(kernel.residual[v], legacy.residual[v])
        << "residual diverges at node " << v << " (source " << source << ")";
  }
  EXPECT_NEAR(kernel.ResidualMass(), legacy.ResidualMass(), 1e-12);
}

template <typename G>
void ExpectReverseBitwiseEqual(const G& g, NodeId target,
                               const PprOptions& opts, PushWorkspace& ws) {
  PushResult legacy = ReversePush(g, target, opts);
  KernelResult kr = ReversePushKernel(g, target, opts, ws);
  PushResult kernel = ExportDensePush(ws, g.NumNodes(), kr.residual_mass);
  ASSERT_EQ(kernel.estimate.size(), legacy.estimate.size());
  for (size_t v = 0; v < legacy.estimate.size(); ++v) {
    ASSERT_EQ(kernel.estimate[v], legacy.estimate[v])
        << "estimate diverges at node " << v << " (target " << target << ")";
    ASSERT_EQ(kernel.residual[v], legacy.residual[v])
        << "residual diverges at node " << v << " (target " << target << ")";
  }
  EXPECT_NEAR(kernel.ResidualMass(), legacy.ResidualMass(), 1e-12);
}

TEST(KernelEquivalenceTest, ForwardMatchesLegacyOnBookGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  PushWorkspace ws;
  for (NodeId s = 0; s < bg.g.NumNodes(); ++s) {
    ExpectForwardBitwiseEqual(bg.g, s, opts, ws);
  }
}

TEST(KernelEquivalenceTest, ReverseMatchesLegacyOnBookGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  PushWorkspace ws;
  for (NodeId t = 0; t < bg.g.NumNodes(); ++t) {
    ExpectReverseBitwiseEqual(bg.g, t, opts, ws);
  }
}

TEST(KernelEquivalenceTest, MatchesLegacyOnRandomHins) {
  Rng rng(7);
  PushWorkspace ws;  // ONE workspace reused across every graph and source
  for (int round = 0; round < 4; ++round) {
    test::RandomHin rh = test::MakeRandomHin(rng, 8, 30, 4, 5);
    PprOptions opts;
    opts.epsilon = round % 2 == 0 ? 1e-6 : 1e-4;
    for (NodeId u : rh.users) ExpectForwardBitwiseEqual(rh.g, u, opts, ws);
    for (size_t i = 0; i < 5 && i < rh.items.size(); ++i) {
      ExpectReverseBitwiseEqual(rh.g, rh.items[i], opts, ws);
    }
  }
}

TEST(KernelEquivalenceTest, MatchesLegacyOnCsrSnapshotAndOverlay) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  PprOptions opts;
  PushWorkspace ws;
  // Clean snapshot.
  for (NodeId s = 0; s < csr.NumNodes(); ++s) {
    ExpectForwardBitwiseEqual(csr, s, opts, ws);
    ExpectReverseBitwiseEqual(csr, s, opts, ws);
  }
  // Edited overlay: remove one base edge, add one new edge. The reference
  // is the legacy engine running over the same overlay view.
  CsrOverlay o(csr);
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  for (NodeId s = 0; s < o.NumNodes(); ++s) {
    ExpectForwardBitwiseEqual(o, s, opts, ws);
    ExpectReverseBitwiseEqual(o, s, opts, ws);
  }
}

TEST(KernelEquivalenceTest, HandlesDanglingNodes) {
  // A chain into a dangling sink plus an isolated node: the dangling
  // branches of both kernels (whole-residual conversion forward, geometric
  // series reverse) must mirror the legacy engines bit for bit.
  HinGraph g;
  auto t = g.RegisterNodeType("n");
  auto e = g.RegisterEdgeType("to");
  NodeId a = g.AddNode(t), b = g.AddNode(t), sink = g.AddNode(t);
  NodeId isolated = g.AddNode(t);
  (void)isolated;
  ASSERT_TRUE(g.AddEdge(a, b, e, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(b, sink, e, 2.0).ok());
  PprOptions opts;
  PushWorkspace ws;
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    ExpectForwardBitwiseEqual(g, s, opts, ws);
    ExpectReverseBitwiseEqual(g, s, opts, ws);
  }
}

TEST(KernelEquivalenceTest, OutOfRangeSourceReturnsEmptyState) {
  test::BookGraph bg = test::MakeBookGraph();
  PushWorkspace ws;
  KernelResult kr = ForwardPushKernel(
      bg.g, static_cast<NodeId>(bg.g.NumNodes()), PprOptions{}, ws);
  EXPECT_EQ(kr.pushes, 0u);
  EXPECT_DOUBLE_EQ(kr.residual_mass, 0.0);
  EXPECT_TRUE(ws.touched().empty());
}

// ---------------------------------------------------------------------------
// Ground truth and invariants

TEST(KernelCorrectnessTest, ForwardKernelApproximatesPowerIteration) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-9;
  PushWorkspace ws;
  for (NodeId s : {bg.paul, bg.alice, bg.bob}) {
    ForwardPushKernel(bg.g, s, opts, ws);
    std::vector<double> truth = PowerIterationPpr(bg.g, s, opts);
    for (NodeId v = 0; v < bg.g.NumNodes(); ++v) {
      EXPECT_NEAR(ws.Estimate(v), truth[v], 1e-5)
          << "source " << s << " node " << v;
    }
  }
}

TEST(KernelCorrectnessTest, WorkspaceReusedStateSatisfiesInvariants) {
  // Eq. 3/4 on states read out of a workspace that served many prior
  // pushes: stale epochs must never leak into the exported state.
  Rng rng(11);
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 25, 3, 4);
  PprOptions opts;
  PushWorkspace ws;
  for (int warm = 0; warm < 10; ++warm) {
    ForwardPushKernel(rh.g, rh.users[warm % rh.users.size()], opts, ws);
  }
  for (NodeId u : rh.users) {
    KernelResult kr = ForwardPushKernel(rh.g, u, opts, ws);
    PushResult state = ExportDensePush(ws, rh.g.NumNodes(), kr.residual_mass);
    EXPECT_TRUE(
        check::ValidateForwardPushInvariant(rh.g, u, state, opts).ok());
  }
  for (size_t i = 0; i < 4; ++i) {
    NodeId t = rh.items[i];
    KernelResult kr = ReversePushKernel(rh.g, t, opts, ws);
    PushResult state = ExportDensePush(ws, rh.g.NumNodes(), kr.residual_mass);
    EXPECT_TRUE(
        check::ValidateReversePushInvariant(rh.g, t, state, opts).ok());
  }
}

TEST(KernelCorrectnessTest, NoDenseResetsAfterWarmup) {
  Rng rng(3);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 40, 4, 6);
  PushWorkspace ws;
  ForwardPushKernel(rh.g, rh.users[0], PprOptions{}, ws);  // warm-up growth
  size_t resets_after_warmup = ws.stats().dense_resets;
  EXPECT_GE(resets_after_warmup, 1u);
  for (int i = 0; i < 50; ++i) {
    ForwardPushKernel(rh.g, rh.users[i % rh.users.size()], PprOptions{}, ws);
    ReversePushKernel(rh.g, rh.items[i % rh.items.size()], PprOptions{}, ws);
  }
  // The tentpole claim: zero O(n) clears once the arrays reached size.
  EXPECT_EQ(ws.stats().dense_resets, resets_after_warmup);
  EXPECT_EQ(ws.stats().begins, 1u + 100u);
  // And the sparse reset actually paid less than dense would have.
  EXPECT_LT(ws.stats().touched_total, 101u * rh.g.NumNodes());
}

// ---------------------------------------------------------------------------
// Dynamic push with workspace

TEST(KernelDynamicTest, SparseRefineMatchesLegacyRefine) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  HinGraph legacy_g = bg.g;
  HinGraph kernel_g = bg.g;
  PushWorkspace ws;
  DynamicForwardPush<HinGraph> legacy(legacy_g, bg.paul, opts);
  DynamicForwardPush<HinGraph> kernel(kernel_g, bg.paul, opts, &ws);
  EXPECT_EQ(legacy.Estimates(), kernel.Estimates());
  EXPECT_EQ(legacy.Residuals(), kernel.Residuals());

  auto edit_both = [&](auto&& fn) {
    legacy.BeforeOutEdgeChange(bg.paul);
    kernel.BeforeOutEdgeChange(bg.paul);
    fn(legacy_g);
    fn(kernel_g);
    legacy.AfterOutEdgeChange(bg.paul);
    kernel.AfterOutEdgeChange(bg.paul);
    // Bitwise: the sparse seed set reproduces the legacy scan's schedule.
    EXPECT_EQ(legacy.Estimates(), kernel.Estimates());
    EXPECT_EQ(legacy.Residuals(), kernel.Residuals());
    EXPECT_NEAR(legacy.AbsResidualMass(), kernel.AbsResidualMass(), 1e-12);
  };

  edit_both([&](HinGraph& g) {
    ASSERT_TRUE(g.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  });
  edit_both([&](HinGraph& g) {
    ASSERT_TRUE(g.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  });
  edit_both([&](HinGraph& g) {
    ASSERT_TRUE(g.AddEdge(bg.paul, bg.candide, bg.rated, 1.0).ok());
  });
}

TEST(KernelDynamicTest, OverlayEditCycleKeepsInvariantAndConverges) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  CsrOverlay o(csr);
  PprOptions opts;
  PushWorkspace ws;
  DynamicForwardPush<CsrOverlay> dyn(o, bg.paul, opts, &ws);
  std::vector<double> initial = dyn.Estimates();

  for (int round = 0; round < 3; ++round) {
    dyn.BeforeOutEdgeChange(bg.paul);
    ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
    dyn.AfterOutEdgeChange(bg.paul);
    EXPECT_TRUE(
        check::ValidateForwardPushInvariant(o, bg.paul, dyn.State(), opts)
            .ok());
    dyn.BeforeOutEdgeChange(bg.paul);
    o.Clear();
    dyn.AfterOutEdgeChange(bg.paul);
    EXPECT_TRUE(
        check::ValidateForwardPushInvariant(o, bg.paul, dyn.State(), opts)
            .ok());
  }
  // After edit+revert cycles the estimates drift only within push tolerance.
  for (NodeId v = 0; v < csr.NumNodes(); ++v) {
    EXPECT_NEAR(dyn.Estimates()[v], initial[v], 1e-4);
  }
}

// ---------------------------------------------------------------------------
// Incremental residual mass (satellite: ResidualMass without the O(n) scan)

TEST(ResidualMassTest, MatchesScanOnPushResults) {
  Rng rng(23);
  test::RandomHin rh = test::MakeRandomHin(rng, 6, 20, 3, 5);
  PprOptions opts;
  for (NodeId u : rh.users) {
    PushResult fwd = ForwardPush(rh.g, u, opts);
    double scan = 0.0;
    for (double r : fwd.residual) scan += r;
    EXPECT_NEAR(fwd.ResidualMass(), scan, 1e-9);
  }
  for (size_t i = 0; i < 5; ++i) {
    PushResult rev = ReversePush(rh.g, rh.items[i], opts);
    double scan = 0.0;
    for (double r : rev.residual) scan += r;
    EXPECT_NEAR(rev.ResidualMass(), scan, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Cooperative deadlines (docs/robustness.md)

TEST(KernelDeadlineTest, ExpiredDeadlineUnwindsEveryEngine) {
  Rng rng(29);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 30, 3, 6);
  CsrGraph g(rh.g);
  PprOptions opts;
  Deadline deadline(1e-12);  // effectively already expired
  deadline.Start();
  opts.deadline = &deadline;
  PushWorkspace ws;
  EXPECT_THROW(ForwardPushKernel(g, rh.users[0], opts, ws),
               DeadlineExceededError);
  EXPECT_THROW(ReversePushKernel(g, rh.items[0], opts, ws),
               DeadlineExceededError);
  EXPECT_THROW(ForwardPushKernelFast(g, rh.users[0], opts, ws),
               DeadlineExceededError);
  EXPECT_THROW(ReversePushKernelFast(g, rh.items[0], opts, ws),
               DeadlineExceededError);
  EXPECT_THROW(ReversePushBatchKernel(g, {rh.items[0], rh.items[1]}, opts, ws),
               DeadlineExceededError);
  EXPECT_THROW(ForwardPush(rh.g, rh.users[0], opts), DeadlineExceededError);
  EXPECT_THROW(ReversePush(rh.g, rh.items[0], opts), DeadlineExceededError);
  EXPECT_THROW(PowerIterationPpr(rh.g, rh.users[0], opts),
               DeadlineExceededError);

  // The unwind mid-push (including mid-batched-push) leaves the workspace
  // rebuildable: the next Begin starts a fresh epoch, and a clean run on
  // the survivor matches a cold workspace bitwise.
  opts.deadline = nullptr;
  KernelResult kr = ForwardPushKernelFast(g, rh.users[0], opts, ws);
  PushResult survivor = ExportDensePush(ws, g.NumNodes(), kr.residual_mass);
  PushWorkspace cold;
  KernelResult ck = ForwardPushKernelFast(g, rh.users[0], opts, cold);
  PushResult fresh = ExportDensePush(cold, g.NumNodes(), ck.residual_mass);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(survivor.estimate[v], fresh.estimate[v]);
    EXPECT_EQ(survivor.residual[v], fresh.residual[v]);
  }
}

TEST(KernelDeadlineTest, UnexpiredAndAbsentDeadlinesChangeNothing) {
  Rng rng(29);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 30, 3, 6);
  CsrGraph g(rh.g);
  PprOptions plain;
  PushWorkspace ws_plain;
  KernelResult baseline = ForwardPushKernel(g, rh.users[1], plain, ws_plain);
  PushResult base_dense =
      ExportDensePush(ws_plain, g.NumNodes(), baseline.residual_mass);

  PprOptions guarded = plain;
  Deadline deadline(3600.0);  // generous: never expires within the test
  deadline.Start();
  guarded.deadline = &deadline;
  PushWorkspace ws_guarded;
  KernelResult kr = ForwardPushKernel(g, rh.users[1], guarded, ws_guarded);
  PushResult guarded_dense =
      ExportDensePush(ws_guarded, g.NumNodes(), kr.residual_mass);
  ASSERT_EQ(guarded_dense.estimate.size(), base_dense.estimate.size());
  for (size_t v = 0; v < base_dense.estimate.size(); ++v) {
    EXPECT_EQ(guarded_dense.estimate[v], base_dense.estimate[v]);
    EXPECT_EQ(guarded_dense.residual[v], base_dense.residual[v]);
  }
  EXPECT_EQ(kr.pushes, baseline.pushes);
}

// ---------------------------------------------------------------------------
// kFast: schedule-free priority kernels. The correctness oracle is the
// Eq. 3 / Eq. 4 residual identity plus the termination threshold — NOT
// bitwise identity with the legacy schedule (which kFast deliberately
// abandons for best-residual-first ordering).

TEST(FastKernelTest, ForwardSatisfiesEq3AndTermination) {
  Rng rng(47);
  test::BookGraph bg = test::MakeBookGraph();
  test::RandomHin rh = test::MakeRandomHin(rng, 8, 24, 3, 6);
  PprOptions opts;
  opts.epsilon = 1e-9;
  PushWorkspace ws;
  struct Case {
    const HinGraph* g;
    NodeId source;
  };
  std::vector<Case> cases;
  for (NodeId s = 0; s < bg.g.NumNodes(); ++s) cases.push_back({&bg.g, s});
  cases.push_back({&rh.g, rh.users[0]});
  cases.push_back({&rh.g, rh.users[3]});
  for (const Case& c : cases) {
    KernelResult kr = ForwardPushKernelFast(*c.g, c.source, opts, ws);
    PushResult fast = ExportDensePush(ws, c.g->NumNodes(), kr.residual_mass);
    EXPECT_TRUE(
        check::ValidateForwardPushInvariant(*c.g, c.source, fast, opts).ok());
    // Termination: every node is below its degree-scaled threshold.
    for (NodeId v = 0; v < c.g->NumNodes(); ++v) {
      double thresh =
          opts.epsilon * std::max<double>(c.g->OutDegree(v), 1.0);
      EXPECT_LT(fast.residual[v], thresh) << "node " << v;
      EXPECT_GE(fast.residual[v], 0.0) << "node " << v;
    }
    // And the estimates are the right numbers, not just a valid state.
    std::vector<double> pi = PowerIterationPpr(*c.g, c.source, opts);
    for (NodeId v = 0; v < c.g->NumNodes(); ++v) {
      EXPECT_NEAR(fast.estimate[v], pi[v], 1e-5) << "node " << v;
    }
  }
}

TEST(FastKernelTest, ReverseSatisfiesEq4AndTermination) {
  Rng rng(53);
  test::BookGraph bg = test::MakeBookGraph();
  test::RandomHin rh = test::MakeRandomHin(rng, 8, 24, 3, 6);
  PprOptions opts;
  opts.epsilon = 1e-9;
  PushWorkspace ws;
  struct Case {
    const HinGraph* g;
    NodeId target;
  };
  std::vector<Case> cases;
  for (NodeId t = 0; t < bg.g.NumNodes(); ++t) cases.push_back({&bg.g, t});
  cases.push_back({&rh.g, rh.items[0]});
  cases.push_back({&rh.g, rh.items[5]});
  for (const Case& c : cases) {
    KernelResult kr = ReversePushKernelFast(*c.g, c.target, opts, ws);
    PushResult fast = ExportDensePush(ws, c.g->NumNodes(), kr.residual_mass);
    EXPECT_TRUE(
        check::ValidateReversePushInvariant(*c.g, c.target, fast, opts).ok());
    for (NodeId v = 0; v < c.g->NumNodes(); ++v) {
      EXPECT_LT(std::abs(fast.residual[v]), opts.epsilon) << "node " << v;
    }
  }
}

TEST(FastKernelTest, DeterministicAcrossRunsAndWorkspaceReuse) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.epsilon = 1e-9;
  // Same workspace reused across epochs, plus a cold workspace: all three
  // runs must be bitwise identical — the priority schedule is a pure
  // function of the graph and options, never of leftover state.
  PushWorkspace warm;
  KernelResult k1 = ForwardPushKernelFast(bg.g, bg.paul, opts, warm);
  PushResult r1 = ExportDensePush(warm, bg.g.NumNodes(), k1.residual_mass);
  KernelResult k2 = ForwardPushKernelFast(bg.g, bg.paul, opts, warm);
  PushResult r2 = ExportDensePush(warm, bg.g.NumNodes(), k2.residual_mass);
  PushWorkspace cold;
  KernelResult k3 = ForwardPushKernelFast(bg.g, bg.paul, opts, cold);
  PushResult r3 = ExportDensePush(cold, bg.g.NumNodes(), k3.residual_mass);
  EXPECT_EQ(k1.pushes, k2.pushes);
  EXPECT_EQ(k1.pushes, k3.pushes);
  for (NodeId v = 0; v < bg.g.NumNodes(); ++v) {
    EXPECT_EQ(r1.estimate[v], r2.estimate[v]);
    EXPECT_EQ(r1.residual[v], r2.residual[v]);
    EXPECT_EQ(r1.estimate[v], r3.estimate[v]);
    EXPECT_EQ(r1.residual[v], r3.residual[v]);
  }
}

TEST(FastKernelTest, BatchColumnsAgreeWithSingleTargetAndSatisfyEq4) {
  Rng rng(61);
  test::RandomHin rh = test::MakeRandomHin(rng, 10, 30, 3, 6);
  PprOptions opts;
  opts.epsilon = 1e-8;
  std::vector<NodeId> targets = {rh.items[0], rh.items[3], rh.items[7],
                                 rh.items[11]};
  PushWorkspace ws;
  BatchPushStats stats;
  std::vector<PushResult> dense;
  std::vector<SparseVector> cols =
      ReversePushBatchKernel(rh.g, targets, opts, ws, &stats, &dense);
  ASSERT_EQ(cols.size(), targets.size());
  ASSERT_EQ(dense.size(), targets.size());
  EXPECT_GT(stats.node_pops, 0u);
  EXPECT_GE(stats.column_pushes, stats.node_pops);

  PushWorkspace single_ws;
  for (size_t c = 0; c < targets.size(); ++c) {
    // Each column is a valid Eq. 4 state of its own.
    EXPECT_TRUE(
        check::ValidateReversePushInvariant(rh.g, targets[c], dense[c], opts)
            .ok())
        << "column " << c;
    // The compacted column is the dense column.
    for (NodeId s = 0; s < rh.g.NumNodes(); ++s) {
      EXPECT_EQ(cols[c].Get(s), dense[c].estimate[s]);
    }
    // Two valid epsilon-approximations of the same PPR column may differ,
    // but only within the push error bound (~epsilon/alpha per source).
    ReversePushKernelFast(rh.g, targets[c], opts, single_ws);
    for (NodeId s = 0; s < rh.g.NumNodes(); ++s) {
      EXPECT_NEAR(single_ws.Estimate(s), dense[c].estimate[s],
                  20.0 * opts.epsilon)
          << "target " << targets[c] << " source " << s;
    }
  }

  // Degenerate batch shapes.
  EXPECT_TRUE(ReversePushBatchKernel(rh.g, {}, opts, ws).empty());
  std::vector<SparseVector> one =
      ReversePushBatchKernel(rh.g, {targets[0]}, opts, ws);
  ASSERT_EQ(one.size(), 1u);
  for (NodeId s = 0; s < rh.g.NumNodes(); ++s) {
    EXPECT_NEAR(one[0].Get(s), dense[0].estimate[s], 20.0 * opts.epsilon);
  }
}

// ---------------------------------------------------------------------------
// Priority frontier unit tests (PushPriorityView): round ordering,
// promotion, cost normalization, and the sub-epsilon floor shift.

TEST(PriorityFrontierTest, DrainsHighestBucketFirst) {
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, /*epsilon=*/1e-9);
  pq.Push(1, 1e-6, 1.0);
  pq.Push(2, 1.0, 1.0);
  pq.Push(3, 1e-3, 1.0);
  EXPECT_EQ(pq.Pop(), 2u);
  EXPECT_EQ(pq.Pop(), 3u);
  EXPECT_EQ(pq.Pop(), 1u);
  EXPECT_EQ(pq.Pop(), graph::kInvalidNode);
}

TEST(PriorityFrontierTest, PromotionJumpsTheRoundQueue) {
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, 1e-9);
  pq.Push(1, 1e-6, 1.0);
  pq.Push(2, 1.0, 1.0);
  EXPECT_EQ(pq.Pop(), 2u);  // round tau is now ~1.0's bucket floor
  // A key at/above tau enters the live ring directly instead of waiting
  // for its bucket's round.
  pq.Push(3, 2.0, 1.0);
  EXPECT_EQ(pq.Pop(), 3u);
  EXPECT_EQ(pq.Pop(), 1u);
  EXPECT_EQ(pq.Pop(), graph::kInvalidNode);
}

TEST(PriorityFrontierTest, PromotedNodeLeavesStaleBucketEntryBehind) {
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, 1e-9);
  pq.Push(1, 1e-6, 1.0);  // filed low
  pq.Push(2, 1.0, 1.0);
  EXPECT_EQ(pq.Pop(), 2u);
  pq.Push(1, 2.0, 1.0);  // promoted: ring now, bucket entry goes stale
  EXPECT_EQ(pq.Pop(), 1u);
  // The stale low-bucket entry must not produce a second pop of node 1.
  EXPECT_EQ(pq.Pop(), graph::kInvalidNode);
}

TEST(PriorityFrontierTest, CostNormalizationOrdersByMagnitudePerCost) {
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, 1e-9);
  // Node 1 has the larger raw magnitude but a hub-sized cost; its key
  // 1.0/1024 loses to node 2's 0.5/1.
  pq.Push(1, 1.0, 1024.0);
  pq.Push(2, 0.5, 1.0);
  EXPECT_EQ(pq.Pop(), 2u);
  EXPECT_EQ(pq.Pop(), 1u);
}

TEST(PriorityFrontierTest, SubEpsilonKeysStillDiscriminate) {
  // kPriorityFloorShift binades below epsilon stay ordered — dynamic
  // repair seeds high-degree nodes whose keys sit below epsilon, and they
  // must still drain best-first rather than collapse into one bucket.
  constexpr double kEps = 1e-9;
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, kEps);
  pq.Push(1, kEps / 16.0, 1.0);
  pq.Push(2, kEps / 4.0, 1.0);
  pq.Push(3, kEps * std::pow(2.0, -20), 1.0);  // below the floor: clamps
  EXPECT_EQ(pq.Pop(), 2u);
  EXPECT_EQ(pq.Pop(), 1u);
  EXPECT_EQ(pq.Pop(), 3u);  // clamped, but never lost
  EXPECT_EQ(pq.Pop(), graph::kInvalidNode);
}

TEST(PriorityFrontierTest, PopClearsStateSoNodesCanReenter) {
  PushWorkspace ws;
  ws.Begin(16);
  PushPriorityView pq(ws, 1e-9);
  pq.Push(1, 1.0, 1.0);
  EXPECT_EQ(pq.Pop(), 1u);
  // Popped nodes shed both the ring flag and the defer flag, so a later
  // relaxation can re-file them.
  pq.Push(1, 1e-4, 1.0);
  EXPECT_EQ(pq.Pop(), 1u);
  EXPECT_EQ(pq.Pop(), graph::kInvalidNode);
}

}  // namespace
}  // namespace emigre::ppr
