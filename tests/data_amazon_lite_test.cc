#include "data/amazon_lite.h"

#include <gtest/gtest.h>

#include <deque>

#include "data/synthetic_amazon.h"
#include "graph/validate.h"

namespace emigre::data {
namespace {

SyntheticAmazonOptions SmallDataOptions() {
  SyntheticAmazonOptions opts;
  opts.num_users = 40;
  opts.num_items = 300;
  opts.num_categories = 8;
  opts.min_actions_per_user = 8;
  opts.max_actions_per_user = 30;
  return opts;
}

AmazonLiteOptions SmallLiteOptions() {
  AmazonLiteOptions opts;
  opts.sample_users = 10;
  opts.min_user_actions = 5;
  opts.max_user_actions = 100;
  return opts;
}

class AmazonLiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Dataset> ds = GenerateSyntheticAmazon(SmallDataOptions());
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
    Result<AmazonLiteGraph> lite = BuildAmazonLite(ds_, SmallLiteOptions());
    ASSERT_TRUE(lite.ok()) << lite.status();
    lite_ = std::move(lite).value();
  }

  Dataset ds_;
  AmazonLiteGraph lite_;
};

TEST_F(AmazonLiteTest, GraphIsValidAndTyped) {
  EXPECT_TRUE(graph::ValidateGraph(lite_.graph).ok());
  EXPECT_EQ(lite_.graph.NodeTypeName(lite_.user_type), "user");
  EXPECT_EQ(lite_.graph.NodeTypeName(lite_.item_type), "item");
  EXPECT_EQ(lite_.graph.NodeTypeName(lite_.review_type), "review");
  EXPECT_EQ(lite_.graph.NodeTypeName(lite_.category_type), "category");
  EXPECT_EQ(lite_.graph.EdgeTypeName(lite_.rated_type), "rated");
  EXPECT_GT(lite_.graph.NumNodes(), 0u);
  EXPECT_GT(lite_.graph.NumEdges(), 0u);
}

TEST_F(AmazonLiteTest, AllRelationsBidirectional) {
  const graph::HinGraph& g = lite_.graph;
  for (const graph::EdgeRef& e : g.AllEdges()) {
    EXPECT_TRUE(g.HasEdge(e.dst, e.src, e.type))
        << "edge " << e.src << "->" << e.dst << " lacks its mirror";
  }
}

TEST_F(AmazonLiteTest, SampledUsersAreModerateActive) {
  AmazonLiteOptions opts = SmallLiteOptions();
  EXPECT_GT(lite_.eval_users.size(), 0u);
  EXPECT_LE(lite_.eval_users.size(), opts.sample_users);
  for (graph::NodeId u : lite_.eval_users) {
    ASSERT_TRUE(lite_.graph.IsValidNode(u));
    EXPECT_EQ(lite_.graph.NodeType(u), lite_.user_type);
    size_t actions = 0;
    for (const graph::Edge& e : lite_.graph.OutEdges(u)) {
      if (e.type == lite_.rated_type || e.type == lite_.reviewed_type) {
        ++actions;
      }
    }
    EXPECT_GE(actions, opts.min_user_actions);
    EXPECT_LE(actions, opts.max_user_actions);
  }
}

TEST_F(AmazonLiteTest, EveryNodeWithinHopLimit) {
  AmazonLiteOptions opts = SmallLiteOptions();
  // BFS from all sampled users: every surviving node must be reachable
  // within the hop limit.
  const graph::HinGraph& g = lite_.graph;
  std::vector<int> dist(g.NumNodes(), -1);
  std::deque<graph::NodeId> frontier;
  for (graph::NodeId u : lite_.eval_users) {
    dist[u] = 0;
    frontier.push_back(u);
  }
  while (!frontier.empty()) {
    graph::NodeId u = frontier.front();
    frontier.pop_front();
    for (const graph::Edge& e : g.OutEdges(u)) {
      if (dist[e.node] < 0) {
        dist[e.node] = dist[u] + 1;
        frontier.push_back(e.node);
      }
    }
  }
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    ASSERT_GE(dist[n], 0) << "node " << n << " unreachable";
    EXPECT_LE(static_cast<size_t>(dist[n]), opts.neighborhood_hops);
  }
}

TEST_F(AmazonLiteTest, OnlyGoodRatingsSurvive) {
  // Count kept user->item rated edges in the *full* (unrestricted) build
  // against the good ratings in the dataset.
  AmazonLiteOptions opts = SmallLiteOptions();
  opts.neighborhood_hops = 0;  // keep everything for exact accounting
  Result<AmazonLiteGraph> full = BuildAmazonLite(ds_, opts);
  ASSERT_TRUE(full.ok());
  size_t good = 0;
  for (const Rating& r : ds_.ratings) {
    if (r.stars > opts.min_stars_exclusive) ++good;
  }
  size_t rated_edges = 0;
  const graph::HinGraph& g = full->graph;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.NodeType(n) != full->user_type) continue;
    for (const graph::Edge& e : g.OutEdges(n)) {
      if (e.type == full->rated_type) ++rated_edges;
    }
  }
  EXPECT_EQ(rated_edges, good);
}

TEST_F(AmazonLiteTest, ReviewNodesHaveItemAnchors) {
  const graph::HinGraph& g = lite_.graph;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.NodeType(n) != lite_.review_type) continue;
    bool anchored = false;
    for (const graph::Edge& e : g.OutEdges(n)) {
      if (e.type == lite_.has_review_type &&
          g.NodeType(e.node) == lite_.item_type) {
        anchored = true;
      }
    }
    EXPECT_TRUE(anchored) << "review node " << n << " has no item";
  }
}

TEST_F(AmazonLiteTest, SimilarityEdgesRespectThresholdAndWeight) {
  AmazonLiteOptions opts = SmallLiteOptions();
  const graph::HinGraph& g = lite_.graph;
  size_t sim_edges = 0;
  for (const graph::EdgeRef& e : g.AllEdges()) {
    if (e.type != lite_.similar_type) continue;
    ++sim_edges;
    EXPECT_EQ(g.NodeType(e.src), lite_.review_type);
    EXPECT_EQ(g.NodeType(e.dst), lite_.review_type);
    double w = g.EdgeWeight(e.src, e.dst, e.type);
    EXPECT_GE(w, opts.review_similarity_threshold);
    EXPECT_LE(w, 1.0 + 1e-9);
  }
  // Topic-correlated embeddings must produce at least some links.
  EXPECT_GT(sim_edges, 0u);
}

TEST_F(AmazonLiteTest, HopZeroKeepsFullGraph) {
  AmazonLiteOptions opts = SmallLiteOptions();
  opts.neighborhood_hops = 0;
  Result<AmazonLiteGraph> full = BuildAmazonLite(ds_, opts);
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full->graph.NumNodes(), lite_.graph.NumNodes());
}

TEST_F(AmazonLiteTest, DeterministicSampling) {
  Result<AmazonLiteGraph> again = BuildAmazonLite(ds_, SmallLiteOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->eval_users, lite_.eval_users);
  EXPECT_EQ(again->graph.NumNodes(), lite_.graph.NumNodes());
  EXPECT_EQ(again->graph.NumEdges(), lite_.graph.NumEdges());
}

}  // namespace
}  // namespace emigre::data
