#include "explain/fast_tester.h"

#include <gtest/gtest.h>

#include "explain/emigre.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::EdgeRef;
using graph::NodeId;

TEST(FastTesterTest, AgreesWithExactTesterOnCraftedCases) {
  for (bool add_case : {true, false}) {
    test::ScenarioFixture f =
        add_case ? test::MakeAddFriendlyCase() : test::MakeRemoveFriendlyCase();
    ExplanationTester exact(f.g, f.user, f.wni, f.opts);
    FastExplanationTester fast(f.g, f.user, f.wni, f.opts);

    // Every single-edge candidate in both modes.
    for (const graph::Edge& e : f.g.OutEdges(f.user)) {
      std::vector<EdgeRef> edits = {EdgeRef{f.user, e.node, e.type}};
      NodeId exact_rec = graph::kInvalidNode;
      NodeId fast_rec = graph::kInvalidNode;
      EXPECT_EQ(exact.Test(edits, Mode::kRemove, &exact_rec),
                fast.Test(edits, Mode::kRemove, &fast_rec));
      EXPECT_EQ(exact_rec, fast_rec);
    }
    for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
      if (f.g.NodeType(n) != f.opts.rec.item_type || n == f.wni ||
          f.g.HasEdge(f.user, n)) {
        continue;
      }
      std::vector<EdgeRef> edits = {EdgeRef{f.user, n, f.opts.add_edge_type}};
      NodeId exact_rec = graph::kInvalidNode;
      NodeId fast_rec = graph::kInvalidNode;
      EXPECT_EQ(exact.Test(edits, Mode::kAdd, &exact_rec),
                fast.Test(edits, Mode::kAdd, &fast_rec))
          << "add candidate " << n;
      EXPECT_EQ(exact_rec, fast_rec);
    }
  }
}

TEST(FastTesterTest, StateRevertsBetweenTests) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);

  // Interleave many different candidates; the fast tester must not leak
  // state from one test into the next.
  Rng rng(7);
  std::vector<EdgeRef> user_edges;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    user_edges.push_back(EdgeRef{f.user, e.node, e.type});
  }
  for (int round = 0; round < 30; ++round) {
    std::vector<EdgeRef> edits;
    for (const EdgeRef& e : user_edges) {
      if (rng.NextBool()) edits.push_back(e);
    }
    if (edits.empty()) continue;
    NodeId exact_rec = graph::kInvalidNode;
    NodeId fast_rec = graph::kInvalidNode;
    EXPECT_EQ(exact.Test(edits, Mode::kRemove, &exact_rec),
              fast.Test(edits, Mode::kRemove, &fast_rec))
        << "round " << round;
    EXPECT_EQ(exact_rec, fast_rec) << "round " << round;
  }
}

TEST(FastTesterTest, MalformedCandidatesRejected) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  // Removing a non-existent edge.
  EXPECT_FALSE(fast.Test({EdgeRef{f.user, f.wni, 0}}, Mode::kRemove));
  // Adding an existing edge.
  EdgeRef existing{f.user, graph::kInvalidNode, 0};
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    existing = EdgeRef{f.user, e.node, e.type};
    break;
  }
  EXPECT_FALSE(fast.Test({existing}, Mode::kAdd));
  // Foreign-rooted edit is outside the fast path's contract.
  NodeId other_user = graph::kInvalidNode;
  for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
    if (n != f.user && f.g.NodeType(n) == f.g.NodeType(f.user)) {
      other_user = n;
      break;
    }
  }
  ASSERT_NE(other_user, graph::kInvalidNode);
  EXPECT_FALSE(
      fast.Test({EdgeRef{other_user, f.wni, f.opts.add_edge_type}},
                Mode::kAdd));
  // After all the rejected candidates, valid ones still evaluate correctly.
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    std::vector<EdgeRef> edits = {EdgeRef{f.user, e.node, e.type}};
    EXPECT_EQ(exact.Test(edits, Mode::kRemove),
              fast.Test(edits, Mode::kRemove));
  }
}

TEST(FastTesterTest, EmigreWithDynamicPushTesterFindsCorrectExplanations) {
  Rng rng(99);
  size_t found_count = 0;
  for (int trial = 0; trial < 4; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 6, 18, 3, 5);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    opts.tester = TesterKind::kDynamicPush;
    opts.rec.ppr.epsilon = 1e-10;  // tight: fast TEST must match exact
    Emigre engine(rh.g, opts);
    for (NodeId user : rh.users) {
      recsys::RecommendationList ranking = engine.CurrentRanking(user);
      if (ranking.size() < 2) continue;
      NodeId wni = ranking.at(1).item;
      for (Mode mode : {Mode::kRemove, Mode::kAdd}) {
        Result<Explanation> r = engine.Explain(WhyNotQuestion{user, wni},
                                               mode,
                                               Heuristic::kIncremental);
        ASSERT_TRUE(r.ok());
        if (!r->found) continue;
        ++found_count;
        // Exact re-verification: the fast tester's positives must be real.
        EmigreOptions exact_opts = opts;
        exact_opts.tester = TesterKind::kExact;
        ExplanationTester checker(rh.g, user, wni, exact_opts);
        EXPECT_TRUE(checker.Test(r->edges, mode))
            << "fast-tester explanation failed exact verification";
      }
      break;  // one user per graph keeps the sweep fast
    }
  }
  EXPECT_GT(found_count, 0u);
}

TEST(FastTesterTest, TestMixedMatchesExact) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);

  std::vector<TesterInterface::ModedEdit> edits;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    edits.push_back({EdgeRef{f.user, e.node, e.type}, Mode::kRemove});
    break;
  }
  // Mix in an addition.
  for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
    if (f.g.NodeType(n) == f.opts.rec.item_type && n != f.wni &&
        !f.g.HasEdge(f.user, n)) {
      edits.push_back({EdgeRef{f.user, n, f.opts.add_edge_type}, Mode::kAdd});
      break;
    }
  }
  NodeId a = graph::kInvalidNode;
  NodeId b = graph::kInvalidNode;
  EXPECT_EQ(exact.TestMixed(edits, &a), fast.TestMixed(edits, &b));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace emigre::explain
