#include "explain/fast_tester.h"

#include <gtest/gtest.h>

#include "explain/emigre.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::EdgeRef;
using graph::NodeId;

TEST(FastTesterTest, AgreesWithExactTesterOnCraftedCases) {
  for (bool add_case : {true, false}) {
    test::ScenarioFixture f =
        add_case ? test::MakeAddFriendlyCase() : test::MakeRemoveFriendlyCase();
    ExplanationTester exact(f.g, f.user, f.wni, f.opts);
    FastExplanationTester fast(f.g, f.user, f.wni, f.opts);

    // Every single-edge candidate in both modes.
    for (const graph::Edge& e : f.g.OutEdges(f.user)) {
      std::vector<EdgeRef> edits = {EdgeRef{f.user, e.node, e.type}};
      NodeId exact_rec = graph::kInvalidNode;
      NodeId fast_rec = graph::kInvalidNode;
      EXPECT_EQ(exact.Test(edits, Mode::kRemove, &exact_rec),
                fast.Test(edits, Mode::kRemove, &fast_rec));
      EXPECT_EQ(exact_rec, fast_rec);
    }
    for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
      if (f.g.NodeType(n) != f.opts.rec.item_type || n == f.wni ||
          f.g.HasEdge(f.user, n)) {
        continue;
      }
      std::vector<EdgeRef> edits = {EdgeRef{f.user, n, f.opts.add_edge_type}};
      NodeId exact_rec = graph::kInvalidNode;
      NodeId fast_rec = graph::kInvalidNode;
      EXPECT_EQ(exact.Test(edits, Mode::kAdd, &exact_rec),
                fast.Test(edits, Mode::kAdd, &fast_rec))
          << "add candidate " << n;
      EXPECT_EQ(exact_rec, fast_rec);
    }
  }
}

TEST(FastTesterTest, StateRevertsBetweenTests) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);

  // Interleave many different candidates; the fast tester must not leak
  // state from one test into the next.
  Rng rng(7);
  std::vector<EdgeRef> user_edges;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    user_edges.push_back(EdgeRef{f.user, e.node, e.type});
  }
  for (int round = 0; round < 30; ++round) {
    std::vector<EdgeRef> edits;
    for (const EdgeRef& e : user_edges) {
      if (rng.NextBool()) edits.push_back(e);
    }
    if (edits.empty()) continue;
    NodeId exact_rec = graph::kInvalidNode;
    NodeId fast_rec = graph::kInvalidNode;
    EXPECT_EQ(exact.Test(edits, Mode::kRemove, &exact_rec),
              fast.Test(edits, Mode::kRemove, &fast_rec))
        << "round " << round;
    EXPECT_EQ(exact_rec, fast_rec) << "round " << round;
  }
}

TEST(FastTesterTest, MalformedCandidatesRejected) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  // Removing a non-existent edge.
  EXPECT_FALSE(fast.Test({EdgeRef{f.user, f.wni, 0}}, Mode::kRemove));
  // Adding an existing edge.
  EdgeRef existing{f.user, graph::kInvalidNode, 0};
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    existing = EdgeRef{f.user, e.node, e.type};
    break;
  }
  EXPECT_FALSE(fast.Test({existing}, Mode::kAdd));
  // Foreign-rooted edit is outside the fast path's contract.
  NodeId other_user = graph::kInvalidNode;
  for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
    if (n != f.user && f.g.NodeType(n) == f.g.NodeType(f.user)) {
      other_user = n;
      break;
    }
  }
  ASSERT_NE(other_user, graph::kInvalidNode);
  EXPECT_FALSE(
      fast.Test({EdgeRef{other_user, f.wni, f.opts.add_edge_type}},
                Mode::kAdd));
  // After all the rejected candidates, valid ones still evaluate correctly.
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    std::vector<EdgeRef> edits = {EdgeRef{f.user, e.node, e.type}};
    EXPECT_EQ(exact.Test(edits, Mode::kRemove),
              fast.Test(edits, Mode::kRemove));
  }
}

TEST(FastTesterTest, EmigreWithDynamicPushTesterFindsCorrectExplanations) {
  Rng rng(99);
  size_t found_count = 0;
  for (int trial = 0; trial < 4; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 6, 18, 3, 5);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    opts.tester = TesterKind::kDynamicPush;
    opts.rec.ppr.epsilon = 1e-10;  // tight: fast TEST must match exact
    Emigre engine(rh.g, opts);
    for (NodeId user : rh.users) {
      recsys::RecommendationList ranking = engine.CurrentRanking(user);
      if (ranking.size() < 2) continue;
      NodeId wni = ranking.at(1).item;
      for (Mode mode : {Mode::kRemove, Mode::kAdd}) {
        Result<Explanation> r = engine.Explain(WhyNotQuestion{user, wni},
                                               mode,
                                               Heuristic::kIncremental);
        ASSERT_TRUE(r.ok());
        if (!r->found) continue;
        ++found_count;
        // Exact re-verification: the fast tester's positives must be real.
        EmigreOptions exact_opts = opts;
        exact_opts.tester = TesterKind::kExact;
        ExplanationTester checker(rh.g, user, wni, exact_opts);
        EXPECT_TRUE(checker.Test(r->edges, mode))
            << "fast-tester explanation failed exact verification";
      }
      break;  // one user per graph keeps the sweep fast
    }
  }
  EXPECT_GT(found_count, 0u);
}

TEST(FastTesterTest, TestMixedMatchesExact) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  FastExplanationTester fast(f.g, f.user, f.wni, f.opts);
  ExplanationTester exact(f.g, f.user, f.wni, f.opts);

  std::vector<TesterInterface::ModedEdit> edits;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    edits.push_back({EdgeRef{f.user, e.node, e.type}, Mode::kRemove});
    break;
  }
  // Mix in an addition.
  for (NodeId n = 0; n < f.g.NumNodes(); ++n) {
    if (f.g.NodeType(n) == f.opts.rec.item_type && n != f.wni &&
        !f.g.HasEdge(f.user, n)) {
      edits.push_back({EdgeRef{f.user, n, f.opts.add_edge_type}, Mode::kAdd});
      break;
    }
  }
  NodeId a = graph::kInvalidNode;
  NodeId b = graph::kInvalidNode;
  EXPECT_EQ(exact.TestMixed(edits, &a), fast.TestMixed(edits, &b));
  EXPECT_EQ(a, b);
}

// The tie-break contract (fast_tester.h): rank by score descending, node id
// ascending on exact ties, regardless of push engine. Crafted graph where
// two items are perfectly symmetric — user -> rated -> category -> {A, B}
// with identical weights — so PPR(A) == PPR(B) bitwise under every
// schedule, and the verdict hinges entirely on the tie-break.
TEST(FastTesterTest, EqualScoreTieBreaksToLowestIdOnEveryEngine) {
  graph::HinGraph g;
  graph::NodeTypeId user_t = g.RegisterNodeType("user");
  graph::NodeTypeId item_t = g.RegisterNodeType("item");
  graph::NodeTypeId cat_t = g.RegisterNodeType("category");
  graph::EdgeTypeId rated = g.RegisterEdgeType("rated");
  graph::EdgeTypeId belongs = g.RegisterEdgeType("belongs-to");
  NodeId u = g.AddNode(user_t);
  NodeId r = g.AddNode(item_t);   // rated seed item
  NodeId a = g.AddNode(item_t);   // tied pair, lower id
  NodeId b = g.AddNode(item_t);   // tied pair, higher id
  NodeId x = g.AddNode(item_t);   // dangling add-candidate
  NodeId c = g.AddNode(cat_t);
  ASSERT_LT(a, b);
  ASSERT_TRUE(g.AddEdge(u, r, rated).ok());
  ASSERT_TRUE(g.AddEdge(r, c, belongs).ok());
  ASSERT_TRUE(g.AddEdge(c, a, belongs).ok());
  ASSERT_TRUE(g.AddEdge(c, b, belongs).ok());

  explain::EmigreOptions base_opts;
  base_opts.rec.item_type = item_t;
  base_opts.allowed_edge_types = {rated};
  base_opts.add_edge_type = rated;
  base_opts.rec.ppr.epsilon = 1e-9;

  // Adding u->x preserves the A/B symmetry (x is a separate branch), so the
  // counterfactual top is the tied pair and must resolve to A, the lower
  // id, under all three engines.
  std::vector<EdgeRef> add_x = {EdgeRef{u, x, rated}};
  for (ppr::PushEngine engine :
       {ppr::PushEngine::kLegacy, ppr::PushEngine::kKernel,
        ppr::PushEngine::kFast}) {
    explain::EmigreOptions opts = base_opts;
    opts.rec.ppr.engine = engine;

    FastExplanationTester ask_a(g, u, /*why_not_item=*/a, opts);
    NodeId rec = graph::kInvalidNode;
    EXPECT_TRUE(ask_a.Test(add_x, Mode::kAdd, &rec))
        << "engine " << static_cast<int>(engine);
    EXPECT_EQ(rec, a) << "engine " << static_cast<int>(engine);

    FastExplanationTester ask_b(g, u, /*why_not_item=*/b, opts);
    rec = graph::kInvalidNode;
    EXPECT_FALSE(ask_b.Test(add_x, Mode::kAdd, &rec))
        << "engine " << static_cast<int>(engine);
    EXPECT_EQ(rec, a) << "engine " << static_cast<int>(engine);

    // All-zero tie: removing the rated edge leaves every eligible item at
    // the floored score 0, so the top is the lowest eligible id (r itself,
    // no longer rated in the counterfactual).
    std::vector<EdgeRef> drop_r = {EdgeRef{u, r, rated}};
    rec = graph::kInvalidNode;
    EXPECT_FALSE(ask_b.Test(drop_r, Mode::kRemove, &rec))
        << "engine " << static_cast<int>(engine);
    EXPECT_EQ(rec, r) << "engine " << static_cast<int>(engine);
  }
}

}  // namespace
}  // namespace emigre::explain
