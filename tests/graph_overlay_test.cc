#include "graph/overlay.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "test_util.h"
#include "util/rng.h"

namespace emigre::graph {
namespace {

using Snapshot = std::map<std::tuple<NodeId, NodeId, EdgeTypeId>, double>;

// Materializes the effective out-edge set of a GraphLike view.
template <typename G>
Snapshot SnapshotOutEdges(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
      snap[{n, dst, t}] += w;
    });
  }
  return snap;
}

template <typename G>
Snapshot SnapshotInEdges(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
      snap[{src, n, t}] += w;
    });
  }
  return snap;
}

TEST(OverlayTest, TransparentWithoutEdits) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  EXPECT_FALSE(o.HasEdits());
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
  EXPECT_EQ(SnapshotInEdges(o), SnapshotInEdges(bg.g));
  for (NodeId n = 0; n < bg.g.NumNodes(); ++n) {
    EXPECT_DOUBLE_EQ(o.OutWeight(n), bg.g.OutWeight(n));
    EXPECT_EQ(o.OutDegree(n), bg.g.OutDegree(n));
    EXPECT_EQ(o.InDegree(n), bg.g.InDegree(n));
  }
}

TEST(OverlayTest, RemoveMasksBaseEdge) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  EXPECT_FALSE(o.HasEdge(bg.paul, bg.candide, bg.rated));
  EXPECT_TRUE(bg.g.HasEdge(bg.paul, bg.candide, bg.rated));  // base intact
  EXPECT_EQ(o.OutDegree(bg.paul), bg.g.OutDegree(bg.paul) - 1);
  EXPECT_EQ(o.InDegree(bg.candide), bg.g.InDegree(bg.candide) - 1);
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) - 1.0);
  EXPECT_EQ(o.NumRemoved(), 1u);
  // Double removal fails.
  EXPECT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).IsNotFound());
}

TEST(OverlayTest, AddCreatesEdge) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  EXPECT_TRUE(o.HasEdge(bg.paul, bg.lotr, bg.rated));
  EXPECT_FALSE(bg.g.HasEdge(bg.paul, bg.lotr));
  EXPECT_EQ(o.OutDegree(bg.paul), bg.g.OutDegree(bg.paul) + 1);
  EXPECT_EQ(o.InDegree(bg.lotr), bg.g.InDegree(bg.lotr) + 1);
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul) + 1.0);
  // Duplicate add fails.
  EXPECT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated).IsAlreadyExists());
  // Adding an edge that exists in base fails too.
  EXPECT_TRUE(o.AddEdge(bg.paul, bg.candide, bg.rated).IsAlreadyExists());
}

TEST(OverlayTest, RemoveThenAddRestoresBaseWeight) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.c_lang, bg.rated).ok());
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.c_lang, bg.rated, 42.0).ok());
  // Un-removal restores the *base* weight, not the requested one.
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
  EXPECT_DOUBLE_EQ(o.OutWeight(bg.paul), bg.g.OutWeight(bg.paul));
  EXPECT_EQ(o.NumRemoved(), 0u);
  EXPECT_EQ(o.NumAdded(), 0u);
}

TEST(OverlayTest, AddThenRemoveIsNoop) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated).ok());
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.lotr, bg.rated).ok());
  EXPECT_FALSE(o.HasEdits());
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
  EXPECT_EQ(SnapshotInEdges(o), SnapshotInEdges(bg.g));
}

TEST(OverlayTest, ClearDropsAllEdits) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated).ok());
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  o.Clear();
  EXPECT_FALSE(o.HasEdits());
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
}

TEST(OverlayTest, EditListsAreSorted) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.python, bg.rated).ok());
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated).ok());
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  auto added = o.AddedEdges();
  ASSERT_EQ(added.size(), 2u);
  EXPECT_LT(added[0], added[1]);
  auto removed = o.RemovedEdges();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], (EdgeRef{bg.paul, bg.candide, bg.rated}));
}

TEST(OverlayTest, RemoveMissingEdgeFails) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  EXPECT_TRUE(o.RemoveEdge(bg.paul, bg.lotr, bg.rated).IsNotFound());
  EXPECT_TRUE(o.RemoveEdge(bg.paul, 999, bg.rated).IsInvalidArgument());
  EXPECT_TRUE(o.AddEdge(bg.paul, 999, bg.rated).IsInvalidArgument());
  EXPECT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, -1.0)
                  .IsInvalidArgument());
}

// Property: a random edit sequence applied to an overlay matches the same
// sequence applied to a mutable copy of the graph.
TEST(OverlayTest, RandomEditsMatchMutatedCopy) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 20, 3, 6);
    GraphOverlay overlay(rh.g);
    HinGraph mutated = rh.g;

    for (int step = 0; step < 30; ++step) {
      NodeId src = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      EdgeTypeId type = rng.NextBool() ? rh.rated : rh.belongs_to;
      if (rng.NextBool()) {
        Status a = overlay.AddEdge(src, dst, type, 1.0);
        Status b = mutated.AddEdge(src, dst, type, 1.0);
        EXPECT_EQ(a.ok(), b.ok()) << a << " vs " << b;
      } else {
        Status a = overlay.RemoveEdge(src, dst, type);
        Status b = mutated.RemoveEdge(src, dst, type);
        EXPECT_EQ(a.ok(), b.ok()) << a << " vs " << b;
      }
    }
    EXPECT_EQ(SnapshotOutEdges(overlay), SnapshotOutEdges(mutated));
    EXPECT_EQ(SnapshotInEdges(overlay), SnapshotInEdges(mutated));
    for (NodeId n = 0; n < rh.g.NumNodes(); ++n) {
      EXPECT_NEAR(overlay.OutWeight(n), mutated.OutWeight(n), 1e-12);
      EXPECT_EQ(overlay.OutDegree(n), mutated.OutDegree(n));
      EXPECT_EQ(overlay.InDegree(n), mutated.InDegree(n));
    }
  }
}

}  // namespace
}  // namespace emigre::graph
