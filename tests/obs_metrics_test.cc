// Tests for src/obs/: registry metric types, snapshot deltas and merges,
// percentile math, and the emigre.metrics.v1 / emigre.bench.v1 JSON
// round-trips (including a randomized byte-identity property sweep).

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace emigre::obs {
namespace {

// Each test names its metrics uniquely (the registry is process-global and
// other tests in this binary share it), and resets values up front so reruns
// within one process stay deterministic.

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter& c = EMIGRE_COUNTER("test.counter.concurrent");
  c.Reset();
  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 10000;
  ASSERT_TRUE(ThreadPool::ParallelFor(kTasks, 8, [&](size_t) {
                for (uint64_t i = 0; i < kPerTask; ++i) c.Increment();
              }).ok());
  EXPECT_EQ(c.Value(), kTasks * kPerTask);
}

TEST(CounterTest, IncrementByN) {
  Counter& c = EMIGRE_COUNTER("test.counter.by_n");
  c.Reset();
  c.Increment(5);
  c.Increment(7);
  EXPECT_EQ(c.Value(), 12u);
}

TEST(GaugeTest, SetAndWatermark) {
  Gauge& g = EMIGRE_GAUGE("test.gauge.basic");
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.SetMax(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.SetMax(9.0);  // higher: raises
  EXPECT_DOUBLE_EQ(g.Value(), 9.0);
}

TEST(GaugeTest, ConcurrentSetMaxKeepsMaximum) {
  Gauge& g = EMIGRE_GAUGE("test.gauge.concurrent");
  g.Reset();
  constexpr size_t kTasks = 64;
  ASSERT_TRUE(ThreadPool::ParallelFor(kTasks, 8, [&](size_t i) {
                g.SetMax(static_cast<double>(i + 1));
              }).ok());
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kTasks));
}

TEST(HistogramTest, BucketBoundsDouble) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), Histogram::kFirstBound);
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketBound(i),
                     2.0 * Histogram::BucketBound(i - 1));
  }
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound / 10), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound * 2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ExactAggregates) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.aggregates");
  h.Reset();
  const std::vector<double> values = {0.001, 0.002, 0.004, 0.010, 0.100};
  double sum = 0.0;
  for (double v : values) {
    h.Record(v);
    sum += v;
  }
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const HistogramSample* sample = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.hist.aggregates") sample = &hs;
  }
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, values.size());
  EXPECT_DOUBLE_EQ(sample->sum, sum);
  EXPECT_DOUBLE_EQ(sample->min, 0.001);
  EXPECT_DOUBLE_EQ(sample->max, 0.100);
  EXPECT_NEAR(sample->Mean(), sum / values.size(), 1e-12);
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.percentiles");
  h.Reset();
  // 1000 samples uniform over (0, 1]: p50 ≈ 0.5, p95 ≈ 0.95, p99 ≈ 0.99.
  // A log2-bucket estimate is correct within its bucket's factor-of-2 width.
  constexpr int kN = 1000;
  for (int i = 1; i <= kN; ++i) h.Record(i / static_cast<double>(kN));
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const HistogramSample* sample = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.hist.percentiles") sample = &hs;
  }
  ASSERT_NE(sample, nullptr);
  struct Case {
    double p;
    double expected;
  };
  for (const Case& c : {Case{50, 0.5}, Case{95, 0.95}, Case{99, 0.99}}) {
    double est = sample->Percentile(c.p);
    EXPECT_GE(est, c.expected / 2) << "p" << c.p;
    EXPECT_LE(est, c.expected * 2) << "p" << c.p;
  }
  // Extremes clamp to the recorded min/max.
  EXPECT_DOUBLE_EQ(sample->Percentile(0), sample->min);
  EXPECT_DOUBLE_EQ(sample->Percentile(100), sample->max);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.single");
  h.Reset();
  h.Record(0.042);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  for (const auto& hs : snap.histograms) {
    if (hs.name != "test.hist.single") continue;
    EXPECT_DOUBLE_EQ(hs.Percentile(50), 0.042);
    EXPECT_DOUBLE_EQ(hs.Percentile(99), 0.042);
  }
}

TEST(SnapshotTest, DeltaSubtractsAndDropsZeroEntries) {
  Counter& a = EMIGRE_COUNTER("test.delta.active");
  Counter& b = EMIGRE_COUNTER("test.delta.idle");
  Histogram& h = EMIGRE_HISTOGRAM("test.delta.hist");
  a.Reset();
  b.Reset();
  h.Reset();
  a.Increment(10);
  b.Increment(3);
  h.Record(0.5);
  MetricsSnapshot before = Registry::Global().Snapshot();
  a.Increment(7);
  h.Record(0.25);
  h.Record(0.125);
  MetricsSnapshot after = Registry::Global().Snapshot();

  MetricsSnapshot delta = Delta(before, after);
  bool saw_active = false, saw_hist = false;
  for (const auto& cs : delta.counters) {
    EXPECT_NE(cs.name, "test.delta.idle") << "all-zero delta must be dropped";
    if (cs.name == "test.delta.active") {
      saw_active = true;
      EXPECT_EQ(cs.value, 7u);
    }
  }
  for (const auto& hs : delta.histograms) {
    if (hs.name == "test.delta.hist") {
      saw_hist = true;
      EXPECT_EQ(hs.count, 2u);
      EXPECT_DOUBLE_EQ(hs.sum, 0.375);
    }
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_hist);
}

TEST(SnapshotTest, DeltaOfIdenticalSnapshotsIsEmpty) {
  // Gauges are not cumulative — a delta reports the `after` value — so zero
  // the registry first to make "nothing happened" observable.
  Registry::Global().Reset();
  EMIGRE_COUNTER("test.delta.static").Increment();
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_TRUE(Delta(snap, snap).Empty());
}

TEST(MergeTest, CountersAddAndDisjointNamesCarryOver) {
  MetricsSnapshot a;
  a.counters = {{"alpha", 10}, {"shared", 5}};
  MetricsSnapshot b;
  b.counters = {{"beta", 3}, {"shared", 7}};
  a.Merge(b);
  ASSERT_EQ(a.counters.size(), 3u);
  EXPECT_EQ(a.counters[0].name, "alpha");
  EXPECT_EQ(a.counters[0].value, 10u);
  EXPECT_EQ(a.counters[1].name, "beta");
  EXPECT_EQ(a.counters[1].value, 3u);
  EXPECT_EQ(a.counters[2].name, "shared");
  EXPECT_EQ(a.counters[2].value, 12u);
}

TEST(MergeTest, GaugesTakeMaximum) {
  MetricsSnapshot a;
  a.gauges = {{"depth", 4.0}, {"only_a", 1.5}};
  MetricsSnapshot b;
  b.gauges = {{"depth", 9.0}, {"only_b", -2.0}};
  a.Merge(b);
  ASSERT_EQ(a.gauges.size(), 3u);
  EXPECT_EQ(a.gauges[0].name, "depth");
  EXPECT_DOUBLE_EQ(a.gauges[0].value, 9.0);
  EXPECT_DOUBLE_EQ(a.gauges[1].value, 1.5);
  EXPECT_DOUBLE_EQ(a.gauges[2].value, -2.0);
}

TEST(MergeTest, HistogramsAddCountsAndTakeRangeExtremes) {
  HistogramSample ha;
  ha.name = "lat";
  ha.count = 3;
  ha.sum = 0.6;
  ha.min = 0.1;
  ha.max = 0.3;
  ha.buckets = {1, 2, 0};
  HistogramSample hb = ha;
  hb.count = 2;
  hb.sum = 1.0;
  hb.min = 0.05;
  hb.max = 0.95;
  hb.buckets = {0, 1, 1, 4};  // longer bucket vector: result takes max size
  MetricsSnapshot a, b;
  a.histograms = {ha};
  b.histograms = {hb};
  a.Merge(b);
  ASSERT_EQ(a.histograms.size(), 1u);
  const HistogramSample& m = a.histograms[0];
  EXPECT_EQ(m.count, 5u);
  EXPECT_DOUBLE_EQ(m.sum, 1.6);
  EXPECT_DOUBLE_EQ(m.min, 0.05);
  EXPECT_DOUBLE_EQ(m.max, 0.95);
  ASSERT_EQ(m.buckets.size(), 4u);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[1], 3u);
  EXPECT_EQ(m.buckets[2], 1u);
  EXPECT_EQ(m.buckets[3], 4u);
}

TEST(MergeTest, EmptyHistogramSideDoesNotClobberRange) {
  // A zero-count histogram's min/max are meaningless placeholders; merging
  // it (in either direction) must keep the populated side's range.
  HistogramSample filled;
  filled.name = "h";
  filled.count = 2;
  filled.sum = 3.0;
  filled.min = 1.0;
  filled.max = 2.0;
  filled.buckets = {2};
  HistogramSample empty;
  empty.name = "h";

  MetricsSnapshot a;
  a.histograms = {filled};
  MetricsSnapshot b;
  b.histograms = {empty};
  a.Merge(b);
  EXPECT_EQ(a.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(a.histograms[0].min, 1.0);
  EXPECT_DOUBLE_EQ(a.histograms[0].max, 2.0);

  MetricsSnapshot c;
  c.histograms = {empty};
  MetricsSnapshot d;
  d.histograms = {filled};
  c.Merge(d);
  EXPECT_EQ(c.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(c.histograms[0].min, 1.0);
  EXPECT_DOUBLE_EQ(c.histograms[0].max, 2.0);
}

TEST(MergeTest, MergeWithEmptySnapshotIsIdentity) {
  MetricsSnapshot a;
  a.counters = {{"c", 7}};
  a.gauges = {{"g", 2.5}};
  MetricsSnapshot before = a;
  a.Merge(MetricsSnapshot{});
  ASSERT_EQ(a.counters.size(), 1u);
  EXPECT_EQ(a.counters[0].value, before.counters[0].value);
  ASSERT_EQ(a.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(a.gauges[0].value, before.gauges[0].value);
}

TEST(MergeTest, MergeOfRegistrySnapshotsMatchesCombinedRun) {
  // The use case Merge exists for: two phase snapshots fold into the same
  // totals the registry itself reports.
  Counter& c = EMIGRE_COUNTER("test.merge.counter");
  Histogram& h = EMIGRE_HISTOGRAM("test.merge.hist");
  Registry::Global().Reset();
  c.Increment(3);
  h.Record(0.25);
  MetricsSnapshot first = Registry::Global().Snapshot();
  MetricsSnapshot base = first;  // phase boundary
  Registry::Global().Reset();
  c.Increment(4);
  h.Record(0.5);
  h.Record(0.125);
  MetricsSnapshot second = Registry::Global().Snapshot();
  base.Merge(second);

  Registry::Global().Reset();
  c.Increment(7);
  h.Record(0.25);
  h.Record(0.5);
  h.Record(0.125);
  MetricsSnapshot combined = Registry::Global().Snapshot();
  for (size_t i = 0; i < combined.counters.size(); ++i) {
    EXPECT_EQ(base.counters[i].name, combined.counters[i].name);
    EXPECT_EQ(base.counters[i].value, combined.counters[i].value);
  }
  for (size_t i = 0; i < combined.histograms.size(); ++i) {
    EXPECT_EQ(base.histograms[i].count, combined.histograms[i].count);
    EXPECT_DOUBLE_EQ(base.histograms[i].sum, combined.histograms[i].sum);
    EXPECT_DOUBLE_EQ(base.histograms[i].min, combined.histograms[i].min);
    EXPECT_DOUBLE_EQ(base.histograms[i].max, combined.histograms[i].max);
    EXPECT_EQ(base.histograms[i].buckets, combined.histograms[i].buckets);
  }
}

TEST(ExportTest, JsonRoundTripPreservesSnapshot) {
  Counter& c = EMIGRE_COUNTER("test.json.counter");
  Gauge& g = EMIGRE_GAUGE("test.json.gauge");
  Histogram& h = EMIGRE_HISTOGRAM("test.json.hist");
  c.Reset();
  g.Reset();
  h.Reset();
  c.Increment(123456789);
  g.Set(2.71828);
  h.Record(0.001);
  h.Record(0.003);
  h.Record(1.5);
  MetricsSnapshot before = Registry::Global().Snapshot();

  std::string json = MetricsJson(before);
  Result<MetricsSnapshot> parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->counters.size(), before.counters.size());
  for (size_t i = 0; i < before.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, before.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, before.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), before.gauges.size());
  for (size_t i = 0; i < before.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, before.gauges[i].name);
    EXPECT_DOUBLE_EQ(parsed->gauges[i].value, before.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), before.histograms.size());
  for (size_t i = 0; i < before.histograms.size(); ++i) {
    const HistogramSample& p = parsed->histograms[i];
    const HistogramSample& b = before.histograms[i];
    EXPECT_EQ(p.name, b.name);
    EXPECT_EQ(p.count, b.count);
    EXPECT_DOUBLE_EQ(p.sum, b.sum);
    EXPECT_DOUBLE_EQ(p.min, b.min);
    EXPECT_DOUBLE_EQ(p.max, b.max);
    EXPECT_EQ(p.buckets, b.buckets);
  }
}

TEST(ExportTest, JsonIncludesTraceSection) {
  MetricsSnapshot snap;
  std::vector<SpanStat> trace = {
      {"explain", 0, 2, 0.125},
      {"explain/search_space", 1, 2, 0.0625},
  };
  std::string json = MetricsJson(snap, trace);
  std::vector<SpanStat> parsed_trace;
  Result<MetricsSnapshot> parsed = ParseMetricsJson(json, &parsed_trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed_trace.size(), 2u);
  EXPECT_EQ(parsed_trace[0].path, "explain");
  EXPECT_EQ(parsed_trace[0].depth, 0);
  EXPECT_EQ(parsed_trace[0].count, 2u);
  EXPECT_DOUBLE_EQ(parsed_trace[0].total_seconds, 0.125);
  EXPECT_EQ(parsed_trace[1].path, "explain/search_space");
  EXPECT_EQ(parsed_trace[1].depth, 1);
}

// --- Randomized byte-identity property sweep -----------------------------
//
// export → parse → export must be byte-identical: values survive exactly
// (64-bit counters above 2^53, shortest-round-trip doubles) and names
// survive exactly (including every character the escaper special-cases).

std::string RandomMetricName(Rng& rng) {
  static const char* kFragments[] = {"ppr", "explain", "push", "tests",
                                     "cache", "batch", "seconds", "queue"};
  std::string name = kFragments[rng.NextBounded(8)];
  size_t parts = 1 + rng.NextBounded(3);
  for (size_t i = 0; i < parts; ++i) {
    name += '.';
    name += kFragments[rng.NextBounded(8)];
  }
  // A quarter of the names exercise the escaper: quotes, backslashes,
  // newlines, tabs, a raw control byte, non-ASCII UTF-8.
  if (rng.NextBool(0.25)) {
    static const char* kHazards[] = {"\"q\"", "back\\slash", "new\nline",
                                     "tab\there", "ctrl\x01", "\xC3\xA9"};
    name += kHazards[rng.NextBounded(6)];
  }
  return name;
}

double RandomDouble(Rng& rng) {
  switch (rng.NextBounded(4)) {
    case 0:
      return rng.NextDouble();                     // [0, 1)
    case 1:
      return rng.NextDouble(-1e9, 1e9);            // large magnitudes
    case 2:
      return rng.NextDouble() * 1e-9;              // tiny
    default:
      return static_cast<double>(rng.NextInt(-1000, 1000));  // integral
  }
}

MetricsSnapshot RandomSnapshot(Rng& rng) {
  MetricsSnapshot snap;
  std::set<std::string> names;  // sorted + unique, like a real snapshot
  const size_t target = 3 + rng.NextBounded(6);
  while (names.size() < target) names.insert(RandomMetricName(rng));
  for (const std::string& name : names) {
    switch (rng.NextBounded(3)) {
      case 0: {
        // Full-width uint64 draws land above 2^53 half the time — the case
        // a double-typed parser would silently corrupt.
        snap.counters.push_back({name, rng.NextUint64()});
        break;
      }
      case 1:
        snap.gauges.push_back({name, RandomDouble(rng)});
        break;
      default: {
        HistogramSample h;
        h.name = name;
        h.buckets.assign(Histogram::kNumBuckets, 0);
        size_t records = 1 + rng.NextBounded(16);
        for (size_t i = 0; i < records; ++i) {
          double v = rng.NextDouble() * 10.0 + 1e-6;
          h.count += 1;
          h.sum += v;
          h.min = h.count == 1 ? v : std::min(h.min, v);
          h.max = h.count == 1 ? v : std::max(h.max, v);
          h.buckets[Histogram::BucketIndex(v)] += 1;
        }
        snap.histograms.push_back(h);
        break;
      }
    }
  }
  return snap;
}

std::vector<SpanStat> RandomTrace(Rng& rng) {
  std::vector<SpanStat> trace;
  size_t n = rng.NextBounded(4);
  std::string path;
  for (size_t i = 0; i < n; ++i) {
    if (!path.empty()) path += '/';
    path += RandomMetricName(rng);
    trace.push_back({path, static_cast<int>(i), 1 + rng.NextUint64() % 100,
                     RandomDouble(rng)});
  }
  return trace;
}

TEST(ExportTest, RandomizedMetricsRoundTripIsByteIdentical) {
  Rng rng(20260809);
  for (int iter = 0; iter < 100; ++iter) {
    MetricsSnapshot snap = RandomSnapshot(rng);
    std::vector<SpanStat> trace = RandomTrace(rng);
    std::string first = MetricsJson(snap, trace);
    std::vector<SpanStat> parsed_trace;
    Result<MetricsSnapshot> parsed = ParseMetricsJson(first, &parsed_trace);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << first;
    std::string second = MetricsJson(*parsed, parsed_trace);
    ASSERT_EQ(first, second) << "iteration " << iter;
  }
}

TEST(ExportTest, RandomizedBenchDocRoundTripIsByteIdentical) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    BenchDoc doc;
    doc.bench = RandomMetricName(rng);
    doc.scale = static_cast<int>(rng.NextBounded(3));
    doc.metrics = RandomSnapshot(rng);
    doc.trace = RandomTrace(rng);
    std::string first = BenchJson(doc);
    Result<BenchDoc> parsed = ParseBenchJson(first);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << first;
    EXPECT_EQ(parsed->bench, doc.bench);
    EXPECT_EQ(parsed->scale, doc.scale);
    std::string second = BenchJson(*parsed);
    ASSERT_EQ(first, second) << "iteration " << iter;
  }
}

TEST(ExportTest, CounterAbove2To53RoundTripsExactly) {
  MetricsSnapshot snap;
  snap.counters.push_back({"big", (1ull << 53) + 1});  // not a double value
  snap.counters.push_back({"max", ~0ull});
  Result<MetricsSnapshot> parsed = ParseMetricsJson(MetricsJson(snap));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->counters.size(), 2u);
  EXPECT_EQ(parsed->counters[0].value, (1ull << 53) + 1);
  EXPECT_EQ(parsed->counters[1].value, ~0ull);
}

TEST(ExportTest, BenchJsonRejectsWrongSchema) {
  EXPECT_FALSE(ParseBenchJson("{\"schema\": \"emigre.metrics.v1\"}").ok());
  EXPECT_FALSE(ParseBenchJson("nope").ok());
}

TEST(ExportTest, ParseRejectsWrongSchema) {
  EXPECT_FALSE(ParseMetricsJson("{\"schema\": \"other.v9\"}").ok());
  EXPECT_FALSE(ParseMetricsJson("not json at all").ok());
  EXPECT_FALSE(ParseMetricsJson("{\"counters\": {}}").ok());
}

TEST(ExportTest, TablePrintsCountersAndHistograms) {
  Counter& c = EMIGRE_COUNTER("test.table.counter");
  c.Reset();
  c.Increment(42);
  Histogram& h = EMIGRE_HISTOGRAM("test.table.seconds");
  h.Reset();
  h.Record(0.010);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string table = FormatMetricsTable(snap);
  EXPECT_NE(table.find("test.table.counter"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("test.table.seconds"), std::string::npos);
}

TEST(ExportTest, TableFormatsNonTimingHistogramsAsPlainNumbers) {
  Histogram& h = EMIGRE_HISTOGRAM("test.table.batch_size");
  h.Reset();
  h.Record(125.0);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string table = FormatMetricsTable(snap);
  size_t row = table.find("test.table.batch_size");
  ASSERT_NE(row, std::string::npos);
  std::string line = table.substr(row, table.find('\n', row) - row);
  // A size of 125 must not be rendered as a duration ("2m05.0s").
  EXPECT_EQ(line.find("2m"), std::string::npos) << line;
  EXPECT_NE(line.find("125"), std::string::npos) << line;
}

TEST(RegistryTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = EMIGRE_COUNTER("test.reset.counter");
  c.Increment(99);
  Registry::Global().Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();  // cached reference still works after Reset
  EXPECT_EQ(c.Value(), 1u);
}

TEST(RegistryTest, SameNameSameMetric) {
  Counter& a = Registry::Global().GetCounter("test.identity");
  Counter& b = Registry::Global().GetCounter("test.identity");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace emigre::obs
