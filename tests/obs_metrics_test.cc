// Tests for src/obs/: registry metric types, snapshot deltas, percentile
// math, and the emigre.metrics.v1 JSON round-trip.

#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "util/thread_pool.h"

namespace emigre::obs {
namespace {

// Each test names its metrics uniquely (the registry is process-global and
// other tests in this binary share it), and resets values up front so reruns
// within one process stay deterministic.

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter& c = EMIGRE_COUNTER("test.counter.concurrent");
  c.Reset();
  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 10000;
  ASSERT_TRUE(ThreadPool::ParallelFor(kTasks, 8, [&](size_t) {
                for (uint64_t i = 0; i < kPerTask; ++i) c.Increment();
              }).ok());
  EXPECT_EQ(c.Value(), kTasks * kPerTask);
}

TEST(CounterTest, IncrementByN) {
  Counter& c = EMIGRE_COUNTER("test.counter.by_n");
  c.Reset();
  c.Increment(5);
  c.Increment(7);
  EXPECT_EQ(c.Value(), 12u);
}

TEST(GaugeTest, SetAndWatermark) {
  Gauge& g = EMIGRE_GAUGE("test.gauge.basic");
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.SetMax(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.SetMax(9.0);  // higher: raises
  EXPECT_DOUBLE_EQ(g.Value(), 9.0);
}

TEST(GaugeTest, ConcurrentSetMaxKeepsMaximum) {
  Gauge& g = EMIGRE_GAUGE("test.gauge.concurrent");
  g.Reset();
  constexpr size_t kTasks = 64;
  ASSERT_TRUE(ThreadPool::ParallelFor(kTasks, 8, [&](size_t i) {
                g.SetMax(static_cast<double>(i + 1));
              }).ok());
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kTasks));
}

TEST(HistogramTest, BucketBoundsDouble) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), Histogram::kFirstBound);
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketBound(i),
                     2.0 * Histogram::BucketBound(i - 1));
  }
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound / 10), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBound * 2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ExactAggregates) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.aggregates");
  h.Reset();
  const std::vector<double> values = {0.001, 0.002, 0.004, 0.010, 0.100};
  double sum = 0.0;
  for (double v : values) {
    h.Record(v);
    sum += v;
  }
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const HistogramSample* sample = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.hist.aggregates") sample = &hs;
  }
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, values.size());
  EXPECT_DOUBLE_EQ(sample->sum, sum);
  EXPECT_DOUBLE_EQ(sample->min, 0.001);
  EXPECT_DOUBLE_EQ(sample->max, 0.100);
  EXPECT_NEAR(sample->Mean(), sum / values.size(), 1e-12);
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.percentiles");
  h.Reset();
  // 1000 samples uniform over (0, 1]: p50 ≈ 0.5, p95 ≈ 0.95, p99 ≈ 0.99.
  // A log2-bucket estimate is correct within its bucket's factor-of-2 width.
  constexpr int kN = 1000;
  for (int i = 1; i <= kN; ++i) h.Record(i / static_cast<double>(kN));
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const HistogramSample* sample = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.hist.percentiles") sample = &hs;
  }
  ASSERT_NE(sample, nullptr);
  struct Case {
    double p;
    double expected;
  };
  for (const Case& c : {Case{50, 0.5}, Case{95, 0.95}, Case{99, 0.99}}) {
    double est = sample->Percentile(c.p);
    EXPECT_GE(est, c.expected / 2) << "p" << c.p;
    EXPECT_LE(est, c.expected * 2) << "p" << c.p;
  }
  // Extremes clamp to the recorded min/max.
  EXPECT_DOUBLE_EQ(sample->Percentile(0), sample->min);
  EXPECT_DOUBLE_EQ(sample->Percentile(100), sample->max);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram& h = EMIGRE_HISTOGRAM("test.hist.single");
  h.Reset();
  h.Record(0.042);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  for (const auto& hs : snap.histograms) {
    if (hs.name != "test.hist.single") continue;
    EXPECT_DOUBLE_EQ(hs.Percentile(50), 0.042);
    EXPECT_DOUBLE_EQ(hs.Percentile(99), 0.042);
  }
}

TEST(SnapshotTest, DeltaSubtractsAndDropsZeroEntries) {
  Counter& a = EMIGRE_COUNTER("test.delta.active");
  Counter& b = EMIGRE_COUNTER("test.delta.idle");
  Histogram& h = EMIGRE_HISTOGRAM("test.delta.hist");
  a.Reset();
  b.Reset();
  h.Reset();
  a.Increment(10);
  b.Increment(3);
  h.Record(0.5);
  MetricsSnapshot before = Registry::Global().Snapshot();
  a.Increment(7);
  h.Record(0.25);
  h.Record(0.125);
  MetricsSnapshot after = Registry::Global().Snapshot();

  MetricsSnapshot delta = Delta(before, after);
  bool saw_active = false, saw_hist = false;
  for (const auto& cs : delta.counters) {
    EXPECT_NE(cs.name, "test.delta.idle") << "all-zero delta must be dropped";
    if (cs.name == "test.delta.active") {
      saw_active = true;
      EXPECT_EQ(cs.value, 7u);
    }
  }
  for (const auto& hs : delta.histograms) {
    if (hs.name == "test.delta.hist") {
      saw_hist = true;
      EXPECT_EQ(hs.count, 2u);
      EXPECT_DOUBLE_EQ(hs.sum, 0.375);
    }
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_hist);
}

TEST(SnapshotTest, DeltaOfIdenticalSnapshotsIsEmpty) {
  // Gauges are not cumulative — a delta reports the `after` value — so zero
  // the registry first to make "nothing happened" observable.
  Registry::Global().Reset();
  EMIGRE_COUNTER("test.delta.static").Increment();
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_TRUE(Delta(snap, snap).Empty());
}

TEST(ExportTest, JsonRoundTripPreservesSnapshot) {
  Counter& c = EMIGRE_COUNTER("test.json.counter");
  Gauge& g = EMIGRE_GAUGE("test.json.gauge");
  Histogram& h = EMIGRE_HISTOGRAM("test.json.hist");
  c.Reset();
  g.Reset();
  h.Reset();
  c.Increment(123456789);
  g.Set(2.71828);
  h.Record(0.001);
  h.Record(0.003);
  h.Record(1.5);
  MetricsSnapshot before = Registry::Global().Snapshot();

  std::string json = MetricsJson(before);
  Result<MetricsSnapshot> parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->counters.size(), before.counters.size());
  for (size_t i = 0; i < before.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, before.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, before.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), before.gauges.size());
  for (size_t i = 0; i < before.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, before.gauges[i].name);
    EXPECT_DOUBLE_EQ(parsed->gauges[i].value, before.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), before.histograms.size());
  for (size_t i = 0; i < before.histograms.size(); ++i) {
    const HistogramSample& p = parsed->histograms[i];
    const HistogramSample& b = before.histograms[i];
    EXPECT_EQ(p.name, b.name);
    EXPECT_EQ(p.count, b.count);
    EXPECT_DOUBLE_EQ(p.sum, b.sum);
    EXPECT_DOUBLE_EQ(p.min, b.min);
    EXPECT_DOUBLE_EQ(p.max, b.max);
    EXPECT_EQ(p.buckets, b.buckets);
  }
}

TEST(ExportTest, JsonIncludesTraceSection) {
  MetricsSnapshot snap;
  std::vector<SpanStat> trace = {
      {"explain", 0, 2, 0.125},
      {"explain/search_space", 1, 2, 0.0625},
  };
  std::string json = MetricsJson(snap, trace);
  std::vector<SpanStat> parsed_trace;
  Result<MetricsSnapshot> parsed = ParseMetricsJson(json, &parsed_trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed_trace.size(), 2u);
  EXPECT_EQ(parsed_trace[0].path, "explain");
  EXPECT_EQ(parsed_trace[0].depth, 0);
  EXPECT_EQ(parsed_trace[0].count, 2u);
  EXPECT_DOUBLE_EQ(parsed_trace[0].total_seconds, 0.125);
  EXPECT_EQ(parsed_trace[1].path, "explain/search_space");
  EXPECT_EQ(parsed_trace[1].depth, 1);
}

TEST(ExportTest, ParseRejectsWrongSchema) {
  EXPECT_FALSE(ParseMetricsJson("{\"schema\": \"other.v9\"}").ok());
  EXPECT_FALSE(ParseMetricsJson("not json at all").ok());
  EXPECT_FALSE(ParseMetricsJson("{\"counters\": {}}").ok());
}

TEST(ExportTest, TablePrintsCountersAndHistograms) {
  Counter& c = EMIGRE_COUNTER("test.table.counter");
  c.Reset();
  c.Increment(42);
  Histogram& h = EMIGRE_HISTOGRAM("test.table.seconds");
  h.Reset();
  h.Record(0.010);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string table = FormatMetricsTable(snap);
  EXPECT_NE(table.find("test.table.counter"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("test.table.seconds"), std::string::npos);
}

TEST(ExportTest, TableFormatsNonTimingHistogramsAsPlainNumbers) {
  Histogram& h = EMIGRE_HISTOGRAM("test.table.batch_size");
  h.Reset();
  h.Record(125.0);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string table = FormatMetricsTable(snap);
  size_t row = table.find("test.table.batch_size");
  ASSERT_NE(row, std::string::npos);
  std::string line = table.substr(row, table.find('\n', row) - row);
  // A size of 125 must not be rendered as a duration ("2m05.0s").
  EXPECT_EQ(line.find("2m"), std::string::npos) << line;
  EXPECT_NE(line.find("125"), std::string::npos) << line;
}

TEST(RegistryTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = EMIGRE_COUNTER("test.reset.counter");
  c.Increment(99);
  Registry::Global().Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();  // cached reference still works after Reset
  EXPECT_EQ(c.Value(), 1u);
}

TEST(RegistryTest, SameNameSameMetric) {
  Counter& a = Registry::Global().GetCounter("test.identity");
  Counter& b = Registry::Global().GetCounter("test.identity");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace emigre::obs
