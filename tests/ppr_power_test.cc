#include "ppr/power_iteration.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/overlay.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::ppr {
namespace {

using graph::HinGraph;
using graph::NodeId;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PowerIterationTest, DistributionSumsToOne) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  std::vector<double> p = PowerIterationPpr(bg.g, bg.paul, opts);
  EXPECT_NEAR(Sum(p), 1.0, 1e-9);
  for (double x : p) EXPECT_GE(x, 0.0);
}

TEST(PowerIterationTest, SeedKeepsAtLeastAlpha) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  opts.alpha = 0.15;
  std::vector<double> p = PowerIterationPpr(bg.g, bg.paul, opts);
  EXPECT_GE(p[bg.paul], opts.alpha - 1e-9);
}

TEST(PowerIterationTest, IsolatedSeedConcentratesAllMass) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  g.AddNode("n");
  std::vector<double> p = PowerIterationPpr(g, a, PprOptions{});
  EXPECT_NEAR(p[a], 1.0, 1e-9);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(PowerIterationTest, DanglingTwoNodeAnalytic) {
  // u -> d with d dangling (self-loop convention):
  // PPR(u,u) = alpha, PPR(u,d) = 1 - alpha.
  HinGraph g;
  NodeId u = g.AddNode("n");
  NodeId d = g.AddNode("n");
  ASSERT_TRUE(g.AddEdge(u, d, g.RegisterEdgeType("e")).ok());
  for (double alpha : {0.15, 0.5, 0.85}) {
    PprOptions opts;
    opts.alpha = alpha;
    std::vector<double> p = PowerIterationPpr(g, u, opts);
    EXPECT_NEAR(p[u], alpha, 1e-9) << "alpha=" << alpha;
    EXPECT_NEAR(p[d], 1.0 - alpha, 1e-9) << "alpha=" << alpha;
  }
}

TEST(PowerIterationTest, DirectedCycleAnalytic) {
  // On a directed n-cycle, PPR(s, k steps ahead) =
  // alpha (1-a)^k / (1 - (1-a)^n).
  const size_t n = 5;
  HinGraph g;
  graph::EdgeTypeId t = g.RegisterEdgeType("e");
  for (size_t i = 0; i < n; ++i) g.AddNode("n");
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(
        g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), t)
            .ok());
  }
  PprOptions opts;
  opts.alpha = 0.2;
  std::vector<double> p = PowerIterationPpr(g, 0, opts);
  double beta = 1.0 - opts.alpha;
  double denom = 1.0 - std::pow(beta, static_cast<double>(n));
  for (size_t k = 0; k < n; ++k) {
    double expected = opts.alpha * std::pow(beta, static_cast<double>(k)) /
                      denom;
    EXPECT_NEAR(p[k], expected, 1e-9) << "k=" << k;
  }
}

TEST(PowerIterationTest, EdgeWeightsSkewTransitions) {
  // s has two out-edges with weights 3 and 1: the heavy target must get
  // three times the light target's score (they are symmetric sinks).
  HinGraph g;
  graph::EdgeTypeId t = g.RegisterEdgeType("e");
  NodeId s = g.AddNode("n");
  NodeId heavy = g.AddNode("n");
  NodeId light = g.AddNode("n");
  ASSERT_TRUE(g.AddEdge(s, heavy, t, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(s, light, t, 1.0).ok());
  std::vector<double> p = PowerIterationPpr(g, s, PprOptions{});
  EXPECT_NEAR(p[heavy] / p[light], 3.0, 1e-6);
}

TEST(PowerIterationTest, AddingDirectEdgeRaisesTargetScore) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  std::vector<double> before = PowerIterationPpr(bg.g, bg.paul, opts);
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  std::vector<double> after = PowerIterationPpr(o, bg.paul, opts);
  EXPECT_GT(after[bg.lotr], before[bg.lotr]);
}

TEST(PowerIterationTest, RemovingEdgeLowersTargetScore) {
  test::BookGraph bg = test::MakeBookGraph();
  PprOptions opts;
  std::vector<double> before = PowerIterationPpr(bg.g, bg.paul, opts);
  graph::GraphOverlay o(bg.g);
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  std::vector<double> after = PowerIterationPpr(o, bg.paul, opts);
  EXPECT_LT(after[bg.candide], before[bg.candide]);
}

TEST(PowerIterationTest, InvalidSeedYieldsZeroVector) {
  test::BookGraph bg = test::MakeBookGraph();
  std::vector<double> p =
      PowerIterationPpr(bg.g, graph::kInvalidNode, PprOptions{});
  EXPECT_NEAR(Sum(p), 0.0, 1e-12);
}

TEST(PowerIterationTest, RandomGraphsSumToOne) {
  Rng rng(5150);
  for (int trial = 0; trial < 10; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 6, 25, 4, 8);
    NodeId seed = rh.users[rng.NextBounded(rh.users.size())];
    std::vector<double> p = PowerIterationPpr(rh.g, seed, PprOptions{});
    EXPECT_NEAR(Sum(p), 1.0, 1e-8);
  }
}

}  // namespace
}  // namespace emigre::ppr
