#include "util/flags.h"

#include <gtest/gtest.h>

namespace emigre {
namespace {

FlagParser MakeParser() {
  FlagParser parser("test tool");
  parser.AddFlag("seed", "rng seed", "42");
  parser.AddFlag("rate", "a rate", "0.5");
  parser.AddFlag("name", "a name", "default");
  parser.AddFlag("verbose", "chatty", "false");
  return parser;
}

TEST(FlagParserTest, DefaultsApplyWithoutArgs) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse(std::vector<std::string>{}).ok());
  EXPECT_EQ(parser.GetInt("seed").ValueOrDie(), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate").ValueOrDie(), 0.5);
  EXPECT_EQ(parser.GetString("name").ValueOrDie(), "default");
  EXPECT_FALSE(parser.GetBool("verbose").ValueOrDie());
  EXPECT_FALSE(parser.WasSet("seed"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--seed=7", "--name=emigre"}).ok());
  EXPECT_EQ(parser.GetInt("seed").ValueOrDie(), 7);
  EXPECT_EQ(parser.GetString("name").ValueOrDie(), "emigre");
  EXPECT_TRUE(parser.WasSet("seed"));
  EXPECT_FALSE(parser.WasSet("rate"));
}

TEST(FlagParserTest, SpaceSyntaxAndBareBoolean) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--seed", "9", "--verbose"}).ok());
  EXPECT_EQ(parser.GetInt("seed").ValueOrDie(), 9);
  EXPECT_TRUE(parser.GetBool("verbose").ValueOrDie());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"input.csv", "--seed=1", "output.csv"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser = MakeParser();
  Status st = parser.Parse({"--bogus=1"});
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("bogus"), std::string::npos);
}

TEST(FlagParserTest, TypeErrorsAtAccess) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--name=xyz"}).ok());
  EXPECT_TRUE(parser.GetInt("name").status().IsInvalidArgument());
  EXPECT_TRUE(parser.GetDouble("name").status().IsInvalidArgument());
  EXPECT_TRUE(parser.GetBool("name").status().IsInvalidArgument());
  EXPECT_TRUE(parser.GetString("missing").status().IsInvalidArgument());
}

TEST(FlagParserTest, BooleanSpellings) {
  for (const char* truthy : {"true", "1", "yes", "on", "TRUE"}) {
    FlagParser parser = MakeParser();
    ASSERT_TRUE(parser.Parse({std::string("--verbose=") + truthy}).ok());
    EXPECT_TRUE(parser.GetBool("verbose").ValueOrDie()) << truthy;
  }
  for (const char* falsy : {"false", "0", "no", "off", "False"}) {
    FlagParser parser = MakeParser();
    ASSERT_TRUE(parser.Parse({std::string("--verbose=") + falsy}).ok());
    EXPECT_FALSE(parser.GetBool("verbose").ValueOrDie()) << falsy;
  }
}

TEST(FlagParserTest, ArgcArgvOverloadSkipsProgramName) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"prog", "--seed=3", "pos"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(parser.GetInt("seed").ValueOrDie(), 3);
  EXPECT_EQ(parser.positional().size(), 1u);
}

TEST(FlagParserTest, HelpListsFlags) {
  FlagParser parser = MakeParser();
  std::string help = parser.Help();
  EXPECT_NE(help.find("test tool"), std::string::npos);
  EXPECT_NE(help.find("--seed"), std::string::npos);
  EXPECT_NE(help.find("rng seed"), std::string::npos);
  EXPECT_NE(help.find("42"), std::string::npos);
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--seed=1", "--seed=2"}).ok());
  EXPECT_EQ(parser.GetInt("seed").ValueOrDie(), 2);
}

}  // namespace
}  // namespace emigre
