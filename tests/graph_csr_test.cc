#include "graph/csr.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "graph/overlay.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::graph {
namespace {

using Snapshot = std::map<std::tuple<NodeId, NodeId, EdgeTypeId>, double>;

template <typename G>
Snapshot SnapshotOut(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
      snap[{n, dst, t}] += w;
    });
  }
  return snap;
}

template <typename G>
Snapshot SnapshotIn(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
      snap[{src, n, t}] += w;
    });
  }
  return snap;
}

TEST(CsrGraphTest, MatchesHinGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  EXPECT_EQ(csr.NumNodes(), bg.g.NumNodes());
  EXPECT_EQ(csr.NumEdges(), bg.g.NumEdges());
  EXPECT_EQ(SnapshotOut(csr), SnapshotOut(bg.g));
  EXPECT_EQ(SnapshotIn(csr), SnapshotIn(bg.g));
  for (NodeId n = 0; n < csr.NumNodes(); ++n) {
    EXPECT_EQ(csr.OutDegree(n), bg.g.OutDegree(n));
    EXPECT_EQ(csr.InDegree(n), bg.g.InDegree(n));
    EXPECT_DOUBLE_EQ(csr.OutWeight(n), bg.g.OutWeight(n));
    EXPECT_EQ(csr.NodeType(n), bg.g.NodeType(n));
  }
}

TEST(CsrGraphTest, SnapshotsOverlayIncludingEdits) {
  test::BookGraph bg = test::MakeBookGraph();
  GraphOverlay o(bg.g);
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 0.5).ok());
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  CsrGraph csr(o, 0);
  EXPECT_EQ(SnapshotOut(csr), SnapshotOut(o));
  EXPECT_EQ(SnapshotIn(csr), SnapshotIn(o));
  EXPECT_EQ(csr.NumEdges(), bg.g.NumEdges());  // one added, one removed
}

TEST(CsrGraphTest, EmptyGraph) {
  HinGraph g;
  CsrGraph csr(g);
  EXPECT_EQ(csr.NumNodes(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
}

TEST(CsrGraphTest, RecommenderRunsIdenticallyOnCsrSnapshot) {
  // CsrGraph models GraphLike, so the whole recommender stack runs on it;
  // results must coincide with the mutable graph's.
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  recsys::RecommenderOptions opts;
  opts.item_type = bg.item_type;
  recsys::RecommendationList a = recsys::RankItems(bg.g, bg.paul, opts);
  recsys::RecommendationList b = recsys::RankItems(csr, bg.paul, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).item, b.at(i).item);
    EXPECT_NEAR(a.at(i).score, b.at(i).score, 1e-12);
  }
}

TEST(CsrGraphTest, RandomGraphsMatch) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 8, 30, 4, 10);
    CsrGraph csr(rh.g);
    EXPECT_EQ(SnapshotOut(csr), SnapshotOut(rh.g));
    EXPECT_EQ(SnapshotIn(csr), SnapshotIn(rh.g));
  }
}

}  // namespace
}  // namespace emigre::graph
