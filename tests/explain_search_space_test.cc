#include "explain/search_space.h"

#include <gtest/gtest.h>

#include "ppr/power_iteration.h"
#include "recsys/recommender.h"
#include "test_util.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

class SearchSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bg_ = test::MakeBookGraph();
    opts_ = test::MakeBookOptions(bg_);
    ranking_ = recsys::RankItems(bg_.g, bg_.paul, opts_.rec);
    rec_ = ranking_.Top();
    // Pick a Why-Not item: the lowest-ranked candidate (most room to
    // explain).
    wni_ = ranking_.at(ranking_.size() - 1).item;
  }

  test::BookGraph bg_;
  EmigreOptions opts_;
  recsys::RecommendationList ranking_;
  NodeId rec_ = graph::kInvalidNode;
  NodeId wni_ = graph::kInvalidNode;
};

TEST_F(SearchSpaceTest, RemoveSpaceContainsExactlyAllowedUserEdges) {
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok()) << space.status();
  // Paul's allowed (rated) actions: Candide and C. The follows edges are
  // filtered by T_e.
  ASSERT_EQ(space->actions.size(), 2u);
  for (const CandidateAction& a : space->actions) {
    EXPECT_EQ(a.edge.src, bg_.paul);
    EXPECT_EQ(a.edge.type, bg_.rated);
    EXPECT_TRUE(a.edge.dst == bg_.candide || a.edge.dst == bg_.c_lang);
  }
  EXPECT_EQ(space->mode, Mode::kRemove);
  EXPECT_EQ(space->user, bg_.paul);
  EXPECT_EQ(space->rec, rec_);
  EXPECT_EQ(space->wni, wni_);
}

TEST_F(SearchSpaceTest, RemoveActionsSortedDescending) {
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  for (size_t i = 1; i < space->actions.size(); ++i) {
    EXPECT_GE(space->actions[i - 1].contribution,
              space->actions[i].contribution);
  }
}

TEST_F(SearchSpaceTest, TauIsSumOfRemoveContributions) {
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  double sum = 0.0;
  for (const CandidateAction& a : space->actions) sum += a.contribution;
  EXPECT_NEAR(space->tau, sum, 1e-12);
}

TEST_F(SearchSpaceTest, TauPositiveWhenRecDominates) {
  // "At the end of Algorithm 1, τ will be positive because in the current
  // setting rec dominates WNI" — holds for the gap semantics when the
  // user's actions are the only conduits (they are: Paul's rated edges).
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  EXPECT_GT(space->tau, 0.0);
}

TEST_F(SearchSpaceTest, ContributionMatchesEq5Definition) {
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  for (const CandidateAction& a : space->actions) {
    double w = bg_.g.EdgeWeight(a.edge.src, a.edge.dst, a.edge.type);
    double expected = w * (space->ppr_to_rec[a.edge.dst] -
                           space->ppr_to_wni[a.edge.dst]);
    EXPECT_NEAR(a.contribution, expected, 1e-12);
  }
}

TEST_F(SearchSpaceTest, ReversePushVectorsApproximatePpr) {
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  for (NodeId n : {bg_.candide, bg_.c_lang, bg_.paul}) {
    std::vector<double> p = ppr::PowerIterationPpr(bg_.g, n, opts_.rec.ppr);
    EXPECT_NEAR(space->ppr_to_rec[n], p[rec_], 1e-6);
    EXPECT_NEAR(space->ppr_to_wni[n], p[wni_], 1e-6);
  }
}

TEST_F(SearchSpaceTest, AddSpaceExcludesForbiddenEndpoints) {
  Result<SearchSpace> space =
      BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok()) << space.status();
  for (const CandidateAction& a : space->actions) {
    EXPECT_EQ(a.edge.src, bg_.paul);
    EXPECT_EQ(a.edge.type, opts_.add_edge_type);
    EXPECT_NE(a.edge.dst, bg_.paul);
    EXPECT_NE(a.edge.dst, wni_);
    EXPECT_EQ(bg_.g.NodeType(a.edge.dst), opts_.rec.item_type);
    EXPECT_FALSE(bg_.g.HasEdge(bg_.paul, a.edge.dst));
  }
}

TEST_F(SearchSpaceTest, AddContributionMatchesEq6Definition) {
  Result<SearchSpace> space =
      BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(space.ok());
  for (const CandidateAction& a : space->actions) {
    double expected = opts_.add_edge_weight *
                      (space->ppr_to_wni[a.edge.dst] -
                       space->ppr_to_rec[a.edge.dst]);
    EXPECT_NEAR(a.contribution, expected, 1e-12);
  }
}

TEST_F(SearchSpaceTest, AddAndRemoveTauAgree) {
  // Both algorithms compute τ from the user's existing edges; the values
  // must match.
  Result<SearchSpace> rm =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  Result<SearchSpace> add =
      BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  ASSERT_TRUE(rm.ok());
  ASSERT_TRUE(add.ok());
  EXPECT_NEAR(rm->tau, add->tau, 1e-12);
}

TEST_F(SearchSpaceTest, AddCandidateCapKeepsStrongest) {
  EmigreOptions capped = opts_;
  capped.max_add_candidates = 1;
  Result<SearchSpace> full =
      BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, opts_);
  Result<SearchSpace> cut =
      BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, capped);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cut.ok());
  ASSERT_EQ(cut->actions.size(), 1u);
  EXPECT_EQ(cut->actions[0].edge, full->actions[0].edge);
}

TEST_F(SearchSpaceTest, RejectsInvalidInputs) {
  EXPECT_TRUE(BuildRemoveSearchSpace(bg_.g, 999, rec_, wni_, opts_)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, 999, opts_)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, rec_, opts_)
                  .status()
                  .IsInvalidArgument());
  EmigreOptions no_add_type = opts_;
  no_add_type.add_edge_type = graph::kInvalidEdgeType;
  EXPECT_TRUE(BuildAddSearchSpace(bg_.g, bg_.paul, rec_, wni_, no_add_type)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SearchSpaceTest, EmptyAllowedTypesMeansAllTypes) {
  EmigreOptions open = opts_;
  open.allowed_edge_types.clear();
  Result<SearchSpace> space =
      BuildRemoveSearchSpace(bg_.g, bg_.paul, rec_, wni_, open);
  ASSERT_TRUE(space.ok());
  // Now the follows edges join the candidate list: 2 rated + 2 follows.
  EXPECT_EQ(space->actions.size(), 4u);
}

}  // namespace
}  // namespace emigre::explain
