#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace emigre {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  // Bound of 1 always yields 0.
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.NextZipf(10, 1.0)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  // Every rank reachable.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) {
    ++counts[rng.NextWeighted(w)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(8);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleClampsToPopulation) {
  Rng rng(8);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 30);
  EXPECT_EQ(sample.size(), 5u);
}

// The O(log n) table must be draw-for-draw bit-identical to the O(n) scan:
// the synthetic generator switched the hot item-pool draws to it, and any
// divergence would silently change every seeded dataset.
TEST(RngTest, WeightedSamplerMatchesNextWeightedBitForBit) {
  Rng weight_rng(99);
  std::vector<double> weights;
  for (int i = 0; i < 1000; ++i) {
    // Heavy-tailed, with ties and zeros — the shapes the generator feeds it.
    weights.push_back(i % 7 == 0 ? 0.0 : 1.0 / (1 + weight_rng.NextBounded(50)));
  }
  WeightedSampler sampler(weights);
  Rng scan_rng(4242);
  Rng table_rng(4242);
  for (int draw = 0; draw < 2000; ++draw) {
    ASSERT_EQ(sampler.Sample(table_rng), scan_rng.NextWeighted(weights))
        << "draw " << draw;
  }
  // Both consumed exactly the same stream.
  EXPECT_EQ(scan_rng.NextUint64(), table_rng.NextUint64());
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
  // Parent stream continues identically after forking.
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace emigre
