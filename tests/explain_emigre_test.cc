#include "explain/emigre.h"

#include <gtest/gtest.h>

#include "explain/tester.h"
#include "recsys/recommender.h"
#include "test_util.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

class EmigreFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bg_ = test::MakeBookGraph();
    opts_ = test::MakeBookOptions(bg_);
    engine_ = std::make_unique<Emigre>(bg_.g, opts_);
    ranking_ = engine_->CurrentRanking(bg_.paul);
    rec_ = ranking_.Top();
  }

  test::BookGraph bg_;
  EmigreOptions opts_;
  std::unique_ptr<Emigre> engine_;
  recsys::RecommendationList ranking_;
  NodeId rec_;
};

TEST_F(EmigreFacadeTest, RejectsNonItemWhyNot) {
  Result<Explanation> r =
      engine_->Explain(WhyNotQuestion{bg_.paul, bg_.fantasy}, Mode::kAdd,
                       Heuristic::kIncremental);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(EmigreFacadeTest, RejectsInteractedItem) {
  // Paul rated Candide: per Definition 4.1 it cannot be a Why-Not item.
  Result<Explanation> r =
      engine_->Explain(WhyNotQuestion{bg_.paul, bg_.candide}, Mode::kAdd,
                       Heuristic::kIncremental);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(EmigreFacadeTest, RejectsCurrentRecommendation) {
  Result<Explanation> r = engine_->Explain(WhyNotQuestion{bg_.paul, rec_},
                                           Mode::kAdd,
                                           Heuristic::kIncremental);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(EmigreFacadeTest, RejectsInvalidNodes) {
  EXPECT_TRUE(engine_
                  ->Explain(WhyNotQuestion{999, bg_.lotr}, Mode::kAdd,
                            Heuristic::kIncremental)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_
                  ->Explain(WhyNotQuestion{bg_.paul, 999}, Mode::kAdd,
                            Heuristic::kIncremental)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EmigreFacadeTest, ExplainAutoFindsSomeExplanation) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  Emigre engine(f.g, f.opts);
  Result<Explanation> r = engine.ExplainAuto(WhyNotQuestion{f.user, f.wni});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found);
  ExplanationTester checker(f.g, f.user, f.wni, f.opts);
  EXPECT_TRUE(checker.Test(r->edges, r->mode));
}

TEST_F(EmigreFacadeTest, ExplainAutoPrefersRemoveWhenItWorks) {
  NodeId wni = ranking_.at(1).item;
  Result<Explanation> remove = engine_->Explain(
      WhyNotQuestion{bg_.paul, wni}, Mode::kRemove, Heuristic::kIncremental);
  ASSERT_TRUE(remove.ok());
  Result<Explanation> aut = engine_->ExplainAuto(WhyNotQuestion{bg_.paul, wni});
  ASSERT_TRUE(aut.ok());
  if (remove->found) {
    EXPECT_EQ(aut->mode, Mode::kRemove);
  } else {
    EXPECT_EQ(aut->mode, Mode::kAdd);
  }
}

TEST_F(EmigreFacadeTest, ExplainAutoSkipsRemoveForActionlessUser) {
  NodeId newbie = bg_.g.AddNode(bg_.user_type, "Newbie");
  Emigre engine(bg_.g, opts_);
  Result<Explanation> r = engine.ExplainAuto(WhyNotQuestion{newbie, bg_.lotr});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->mode, Mode::kAdd);
}

TEST_F(EmigreFacadeTest, CurrentRankingMatchesRecommender) {
  recsys::RecommendationList direct =
      recsys::RankItems(bg_.g, bg_.paul, opts_.rec);
  ASSERT_EQ(ranking_.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(ranking_.at(i).item, direct.at(i).item);
  }
}

TEST_F(EmigreFacadeTest, OriginalRecRecordedOnExplanations) {
  NodeId wni = ranking_.at(1).item;
  for (Mode mode : {Mode::kRemove, Mode::kAdd}) {
    Result<Explanation> r = engine_->Explain(WhyNotQuestion{bg_.paul, wni},
                                             mode, Heuristic::kIncremental);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->original_rec, rec_);
  }
}

TEST(ExplanationNamesTest, EnumsHaveStableNames) {
  EXPECT_EQ(ModeName(Mode::kAdd), "add");
  EXPECT_EQ(ModeName(Mode::kRemove), "remove");
  EXPECT_EQ(HeuristicName(Heuristic::kIncremental), "Incremental");
  EXPECT_EQ(HeuristicName(Heuristic::kPowerset), "Powerset");
  EXPECT_EQ(HeuristicName(Heuristic::kExhaustive), "ex");
  EXPECT_EQ(HeuristicName(Heuristic::kExhaustiveDirect), "ex_direct");
  EXPECT_EQ(HeuristicName(Heuristic::kBruteForce), "brute");
  EXPECT_EQ(FailureReasonName(FailureReason::kColdStart), "cold-start");
  EXPECT_EQ(FailureReasonName(FailureReason::kPopularItem), "popular-item");
}

}  // namespace
}  // namespace emigre::explain
