#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace emigre {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status original = Status::NotFound("edge");
  Status copy = original;
  EXPECT_EQ(copy, original);
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsNotFound());
  EXPECT_EQ(moved.message(), "edge");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  EMIGRE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  EMIGRE_ASSIGN_OR_RETURN(int half, HalfOf(x));
  EMIGRE_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> fail_outer = QuarterOf(7);
  EXPECT_TRUE(fail_outer.status().IsInvalidArgument());

  Result<int> fail_inner = QuarterOf(6);  // 6/2 = 3, odd
  EXPECT_TRUE(fail_inner.status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace emigre
