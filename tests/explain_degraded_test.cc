// Anytime graceful degradation (docs/robustness.md): budget expiry with
// `EmigreOptions::anytime` returns the deterministic best-so-far candidate
// flagged `degraded`; serial and parallel verification agree on it; the
// invariant validators refuse to accept it as a proven explanation; and a
// tiny query deadline surfaces as kBudgetExceeded within bounded wall-clock.

#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.h"
#include "explain/emigre.h"
#include "explain/explanation.h"
#include "explain/options.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace emigre::explain {
namespace {

// Two explanations are interchangeable outputs: same outcome, same edges in
// the same order, same degradation flag.
void ExpectSameExplanation(const Explanation& a, const Explanation& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.failure, b.failure);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    EXPECT_EQ(a.edges[i].type, b.edges[i].type);
  }
}

TEST(AnytimeDegradedTest, OffByDefaultBudgetExpiryStaysBareFailure) {
  Rng rng(11);
  test::RandomHin rh = test::MakeRandomHin(rng, 12, 30, 3, 8);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);
  opts.max_tests = 1;  // expire almost immediately
  Emigre engine(rh.g, opts);
  bool saw_budget_failure = false;
  for (graph::NodeId user : rh.users) {
    for (graph::NodeId item : rh.items) {
      Result<Explanation> r =
          engine.Explain(WhyNotQuestion{user, item}, Mode::kRemove,
                         Heuristic::kIncremental);
      if (!r.ok()) continue;  // invalid question for this pair
      EXPECT_FALSE(r->degraded) << "anytime defaults to off";
      if (r->failure == FailureReason::kBudgetExceeded) {
        saw_budget_failure = true;
        EXPECT_FALSE(r->found);
      }
    }
    if (saw_budget_failure) break;
  }
  EXPECT_TRUE(saw_budget_failure);
}

TEST(AnytimeDegradedTest, SerialAndParallelReturnTheSameDegradedResult) {
  Rng rng(23);
  test::RandomHin rh = test::MakeRandomHin(rng, 12, 30, 3, 8);
  explain::EmigreOptions base = test::MakeRandomHinOptions(rh);
  base.anytime = true;
  size_t degraded_seen = 0;
  // Sweep budgets, heuristics, and push engines; every (question, budget)
  // pair must agree between serial and 4-way parallel verification,
  // degraded or not — the anytime candidate is keyed to the serial budget
  // boundary. The candidate enumeration order and the tester verdicts are
  // both engine-independent, so the degraded best-so-far must ALSO be
  // identical across kLegacy / kKernel / kFast: the cross-engine check
  // compares every engine's serial result against the legacy baseline.
  for (Heuristic h : {Heuristic::kIncremental, Heuristic::kPowerset,
                      Heuristic::kExhaustive}) {
    for (size_t max_tests : {1u, 2u, 3u, 5u, 8u}) {
      std::vector<Result<Explanation>> legacy_results;
      for (ppr::PushEngine engine :
           {ppr::PushEngine::kLegacy, ppr::PushEngine::kKernel,
            ppr::PushEngine::kFast}) {
        explain::EmigreOptions serial = base;
        serial.max_tests = max_tests;
        serial.test_threads = 1;
        serial.rec.ppr.engine = engine;
        explain::EmigreOptions parallel = serial;
        parallel.test_threads = 4;
        Emigre serial_engine(rh.g, serial);
        Emigre parallel_engine(rh.g, parallel);
        size_t question = 0;
        for (size_t u = 0; u < 4 && u < rh.users.size(); ++u) {
          for (size_t i = 0; i < 6 && i < rh.items.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << "engine=" << static_cast<int>(engine)
                         << " heuristic=" << static_cast<int>(h)
                         << " max_tests=" << max_tests << " user="
                         << rh.users[u] << " wni=" << rh.items[i]);
            WhyNotQuestion q{rh.users[u], rh.items[i]};
            Result<Explanation> rs =
                serial_engine.Explain(q, Mode::kRemove, h);
            Result<Explanation> rp =
                parallel_engine.Explain(q, Mode::kRemove, h);
            ASSERT_EQ(rs.ok(), rp.ok());
            if (engine == ppr::PushEngine::kLegacy) {
              legacy_results.push_back(rs);
            } else {
              ASSERT_LT(question, legacy_results.size());
              const Result<Explanation>& rl = legacy_results[question];
              ASSERT_EQ(rs.ok(), rl.ok());
              if (rs.ok()) ExpectSameExplanation(rs.value(), rl.value());
            }
            ++question;
            if (!rs.ok()) continue;
            ExpectSameExplanation(rs.value(), rp.value());
            if (rs->degraded) {
              ++degraded_seen;
              // The degraded contract.
              EXPECT_TRUE(rs->found);
              EXPECT_FALSE(rs->verified);
              EXPECT_EQ(rs->failure, FailureReason::kBudgetExceeded);
              EXPECT_FALSE(rs->edges.empty());
            }
          }
        }
      }
    }
  }
  EXPECT_GT(degraded_seen, 0u) << "the sweep never exercised degradation";
}

TEST(AnytimeDegradedTest, ValidateExplanationRejectsDegradedResults) {
  test::BookGraph bg = test::MakeBookGraph();
  explain::EmigreOptions opts = test::MakeBookOptions(bg);
  Explanation e;
  e.found = true;
  e.degraded = true;
  e.verified = false;
  e.mode = Mode::kRemove;
  e.failure = FailureReason::kBudgetExceeded;
  e.edges.push_back({bg.paul, bg.harry_potter, bg.rated});
  Status st = check::ValidateExplanation(
      bg.g, WhyNotQuestion{bg.paul, bg.candide}, e, opts);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(DeadlineRegressionTest, TinyDeadlineReturnsBudgetExceededQuickly) {
  Rng rng(31);
  // Large enough that an unbounded query takes real work.
  test::RandomHin rh = test::MakeRandomHin(rng, 60, 200, 6, 20);
  explain::EmigreOptions opts = test::MakeRandomHinOptions(rh);
  opts.deadline_seconds = 1e-4;
  opts.tester = TesterKind::kDynamicPush;
  Emigre engine(rh.g, opts);
  WallTimer timer;
  Result<Explanation> r = engine.Explain(
      WhyNotQuestion{rh.users[0], rh.items[rh.items.size() - 1]},
      Mode::kRemove, Heuristic::kIncremental);
  double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->failure, FailureReason::kBudgetExceeded);
  // The deadline is honored cooperatively inside the push loops, so even a
  // generous bound on the overshoot factor stays far below an un-deadlined
  // run; 5 s also absorbs slow CI machines.
  EXPECT_LT(elapsed, 5.0);
}

}  // namespace
}  // namespace emigre::explain
