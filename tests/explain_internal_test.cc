#include "explain/internal.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "explain/tester.h"
#include "test_util.h"

namespace emigre::explain::internal {
namespace {

TEST(CombinationTest, EnumeratesAllSubsetsOfSizeK) {
  std::set<std::vector<size_t>> seen;
  ForEachCombination(5, 2, [&](const std::vector<size_t>& idx) {
    EXPECT_EQ(idx.size(), 2u);
    EXPECT_LT(idx[0], idx[1]);
    EXPECT_LT(idx[1], 5u);
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate combination";
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);  // C(5,2)
}

TEST(CombinationTest, LexicographicOrder) {
  std::vector<std::vector<size_t>> order;
  ForEachCombination(4, 2, [&](const std::vector<size_t>& idx) {
    order.push_back(idx);
    return true;
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(order.back(), (std::vector<size_t>{2, 3}));
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(CombinationTest, EarlyStopPropagates) {
  int count = 0;
  bool completed = ForEachCombination(6, 3, [&](const std::vector<size_t>&) {
    return ++count < 4;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 4);
}

TEST(CombinationTest, EdgeCases) {
  int count = 0;
  auto counter = [&](const std::vector<size_t>&) {
    ++count;
    return true;
  };
  // k == n: exactly one combination.
  count = 0;
  EXPECT_TRUE(ForEachCombination(3, 3, counter));
  EXPECT_EQ(count, 1);
  // k > n: none.
  count = 0;
  EXPECT_TRUE(ForEachCombination(3, 4, counter));
  EXPECT_EQ(count, 0);
  // k == 0: the empty combination, once.
  count = 0;
  EXPECT_TRUE(ForEachCombination(3, 0, counter));
  EXPECT_EQ(count, 1);
  // n == 1.
  count = 0;
  EXPECT_TRUE(ForEachCombination(1, 1, counter));
  EXPECT_EQ(count, 1);
}

TEST(BinomialCappedTest, ExactSmallValues) {
  EXPECT_EQ(BinomialCapped(5, 2, 1000), 10u);
  EXPECT_EQ(BinomialCapped(10, 0, 1000), 1u);
  EXPECT_EQ(BinomialCapped(10, 10, 1000), 1u);
  EXPECT_EQ(BinomialCapped(10, 3, 1000), 120u);
  EXPECT_EQ(BinomialCapped(3, 5, 1000), 0u);
  EXPECT_EQ(BinomialCapped(18, 9, 1u << 30), 48620u);
}

TEST(BinomialCappedTest, SaturatesAtCap) {
  EXPECT_EQ(BinomialCapped(10, 3, 50), 50u);
  EXPECT_EQ(BinomialCapped(64, 32, 1000), 1000u);
  // Would overflow size_t without saturation.
  EXPECT_EQ(BinomialCapped(200, 100, 12345), 12345u);
}

TEST(SearchBudgetTest, TestCapAndUnlimited) {
  EmigreOptions opts;
  opts.max_tests = 3;
  opts.deadline_seconds = 0.0;
  SearchBudget budget(opts);
  EXPECT_FALSE(budget.Exhausted(0));
  EXPECT_FALSE(budget.Exhausted(2));
  EXPECT_TRUE(budget.Exhausted(3));
  EXPECT_TRUE(budget.Exhausted(10));

  opts.max_tests = 0;  // unlimited
  SearchBudget unlimited(opts);
  EXPECT_FALSE(unlimited.Exhausted(1u << 30));
}

TEST(SearchBudgetTest, DeadlineExpires) {
  EmigreOptions opts;
  opts.max_tests = 0;
  opts.deadline_seconds = 1e-9;
  SearchBudget budget(opts);
  // The clock has certainly advanced past a nanosecond by now.
  EXPECT_TRUE(budget.Exhausted(0));
}

// ---------------------------------------------------------------------------
// The TEST verifier itself.
// ---------------------------------------------------------------------------

TEST(TesterTest, CountsInvocationsAndReportsNewRec) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  ExplanationTester tester(f.g, f.user, f.wni, f.opts);
  EXPECT_EQ(tester.num_tests(), 0u);

  // Removing nothing keeps the original recommendation.
  graph::NodeId new_rec = graph::kInvalidNode;
  EXPECT_FALSE(tester.Test({}, Mode::kRemove, &new_rec));
  EXPECT_EQ(tester.num_tests(), 1u);
  EXPECT_NE(new_rec, f.wni);

  // A malformed candidate (removing a non-existent edge) is never valid.
  EXPECT_FALSE(tester.Test({graph::EdgeRef{f.user, f.wni, 0}},
                           Mode::kRemove, &new_rec));
  EXPECT_EQ(new_rec, graph::kInvalidNode);
  EXPECT_EQ(tester.num_tests(), 2u);
}

TEST(TesterTest, AddModeDuplicateEdgeRejected) {
  test::ScenarioFixture f = test::MakeAddFriendlyCase();
  ExplanationTester tester(f.g, f.user, f.wni, f.opts);
  // The user's existing action cannot be "added" again.
  graph::EdgeRef existing{f.user, graph::kInvalidNode, 0};
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    existing = graph::EdgeRef{f.user, e.node, e.type};
    break;
  }
  EXPECT_FALSE(tester.Test({existing}, Mode::kAdd));
}

TEST(TesterTest, MixedEditsApplyBothDirections) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  ExplanationTester tester(f.g, f.user, f.wni, f.opts);
  // Find the conduit edge whose removal promotes the WNI.
  std::vector<graph::EdgeRef> removal;
  for (const graph::Edge& e : f.g.OutEdges(f.user)) {
    if (f.g.Label(e.node) == "D") {
      removal.push_back(graph::EdgeRef{f.user, e.node, e.type});
    }
  }
  ASSERT_EQ(removal.size(), 1u);
  EXPECT_TRUE(tester.Test(removal, Mode::kRemove));
  // The same candidate expressed through the mixed interface.
  EXPECT_TRUE(tester.TestMixed(
      {ExplanationTester::ModedEdit{removal[0], Mode::kRemove}}));
}

}  // namespace
}  // namespace emigre::explain::internal
