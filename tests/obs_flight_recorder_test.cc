// Tests for the flight-recorder layer of src/obs/: the per-thread timeline
// rings and Chrome-trace export (timeline.h), query-id propagation, the
// emigre.query.v1 audit records (query_log.h), and the perf-gate comparator
// (perfgate.h).

#include "obs/timeline.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/perfgate.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace emigre::obs {
namespace {

// --- Timeline -------------------------------------------------------------

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(true);
    SetTimelineEnabled(true);
    ResetTimeline();
  }
  void TearDown() override {
    SetTimelineEnabled(false);
    SetTracingEnabled(false);
    ResetTimeline();
  }

  static const TimelineEvent* FindPath(const std::vector<TimelineEvent>& events,
                                       const std::string& path) {
    for (const TimelineEvent& e : events) {
      if (e.path == path) return &e;
    }
    return nullptr;
  }
};

TEST_F(TimelineTest, SpansRecordNestedEventsWithQueryId) {
  const uint64_t qid = BeginQuery();
  {
    EMIGRE_SPAN("rec_outer");
    EMIGRE_SPAN("rec_inner");
  }
  SetCurrentQueryId(0);
  std::vector<TimelineEvent> events = TimelineSnapshot();
  const TimelineEvent* outer = FindPath(events, "rec_outer");
  const TimelineEvent* inner = FindPath(events, "rec_outer/rec_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->query_id, qid);
  EXPECT_EQ(inner->query_id, qid);
  EXPECT_GE(outer->dur_us, 0.0);
  // The inner span starts no earlier and ends no later than its parent.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us + 1e-3);
}

TEST_F(TimelineTest, SnapshotIsSortedByStartTime) {
  for (int i = 0; i < 5; ++i) {
    EMIGRE_SPAN("tick");
  }
  std::vector<TimelineEvent> events = TimelineSnapshot();
  ASSERT_GE(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
}

TEST_F(TimelineTest, DisabledTimelineRecordsNoEvents) {
  SetTimelineEnabled(false);
  {
    EMIGRE_SPAN("quiet");
  }
  EXPECT_EQ(FindPath(TimelineSnapshot(), "quiet"), nullptr);
}

TEST_F(TimelineTest, EventsFromWorkerThreadsCarryDistinctThreadIds) {
  ASSERT_TRUE(ThreadPool::ParallelFor(4, 4, [&](size_t) {
                EMIGRE_SPAN("worker");
              }).ok());
  std::vector<TimelineEvent> events = TimelineSnapshot();
  size_t count = 0;
  for (const TimelineEvent& e : events) {
    if (e.path == "worker") ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST_F(TimelineTest, ChromeTraceExportIsValidTraceEventJson) {
  const uint64_t qid = BeginQuery();
  {
    EMIGRE_SPAN("phase_a");
  }
  SetCurrentQueryId(0);
  std::vector<TimelineEvent> events = TimelineSnapshot();
  ASSERT_FALSE(events.empty());
  std::string out = ExportChromeTrace(events);
  Result<json::JsonValue> parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << out;
  const json::JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, json::JsonValue::Kind::kArray);
  ASSERT_FALSE(trace_events->array.empty());
  bool saw_phase_a = false;
  for (const json::JsonValue& ev : trace_events->array) {
    EXPECT_EQ(json::StringOr(ev, "ph"), "X");
    const json::JsonValue* args = ev.Find("args");
    ASSERT_NE(args, nullptr);
    if (json::StringOr(*args, "path") == "phase_a") {
      saw_phase_a = true;
      EXPECT_EQ(json::StringOr(ev, "name"), "phase_a");
      EXPECT_EQ(json::UintOr(*args, "query"), qid);
    }
  }
  EXPECT_TRUE(saw_phase_a);
}

TEST_F(TimelineTest, WriteChromeTraceCreatesFile) {
  {
    EMIGRE_SPAN("to_disk");
  }
  std::string dir = test::MakeTempDir("timeline");
  std::string path = dir + "/trace.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  Result<json::JsonValue> parsed = json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("traceEvents"), nullptr);
}

TEST_F(TimelineTest, RingOverwritesOldestWhenFull) {
  // More events than one ring holds: the snapshot stays bounded and keeps
  // the newest events (flight-recorder semantics).
  constexpr int kEvents = (1 << 14) + 64;
  for (int i = 0; i < kEvents; ++i) {
    EMIGRE_SPAN("flood");
  }
  std::vector<TimelineEvent> events = TimelineSnapshot();
  EXPECT_LE(events.size(), static_cast<size_t>(1 << 14));
  EXPECT_FALSE(events.empty());
}

TEST(QueryIdTest, BeginQueryAllocatesFreshIdsAndSetsCurrent) {
  uint64_t a = BeginQuery();
  uint64_t b = BeginQuery();
  EXPECT_GT(b, a);
  EXPECT_EQ(CurrentQueryId(), b);
  SetCurrentQueryId(17);
  EXPECT_EQ(CurrentQueryId(), 17u);
  SetCurrentQueryId(0);
  EXPECT_EQ(CurrentQueryId(), 0u);
}

// --- emigre.query.v1 records ----------------------------------------------

QueryRecord MakeFullRecord() {
  QueryRecord r;
  r.query_id = 42;
  r.user = 12;
  r.why_not_item = 48;
  r.mode = "remove";
  r.heuristic = "Incremental";
  r.heuristic_chain = {"remove/Incremental"};
  r.deadline_seconds = 1.5;
  r.max_tests = 20000;
  r.test_threads = 4;
  r.tester = "dynamic_push";
  r.anytime = true;
  r.found = true;
  r.verified = true;
  r.degraded = false;
  r.degraded_gap = 0.0;
  r.failure = "none";
  r.error = "";
  r.original_rec = 3;
  r.new_rec = 48;
  r.search_space_size = 9;
  r.candidates_considered = 4;
  r.tests_performed = 4;
  r.seconds = 0.0125;
  r.phase_seconds = {{"ranking", 0.004}, {"search_space", 0.003},
                     {"heuristic", 0.005}};
  r.faults_fired = {{"explain.query", 1}};
  r.edges = {{12, 30, 0}, {12, 31, 2}};
  return r;
}

TEST(QueryRecordTest, JsonRoundTripPreservesEveryField) {
  QueryRecord r = MakeFullRecord();
  std::string line = QueryRecordJson(r);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "JSONL: one line";
  Result<QueryRecord> p = ParseQueryRecord(line);
  ASSERT_TRUE(p.ok()) << p.status().ToString() << "\n" << line;
  EXPECT_EQ(p->query_id, r.query_id);
  EXPECT_EQ(p->user, r.user);
  EXPECT_EQ(p->why_not_item, r.why_not_item);
  EXPECT_EQ(p->mode, r.mode);
  EXPECT_EQ(p->heuristic, r.heuristic);
  EXPECT_EQ(p->heuristic_chain, r.heuristic_chain);
  EXPECT_DOUBLE_EQ(p->deadline_seconds, r.deadline_seconds);
  EXPECT_EQ(p->max_tests, r.max_tests);
  EXPECT_EQ(p->test_threads, r.test_threads);
  EXPECT_EQ(p->tester, r.tester);
  EXPECT_EQ(p->anytime, r.anytime);
  EXPECT_EQ(p->found, r.found);
  EXPECT_EQ(p->verified, r.verified);
  EXPECT_EQ(p->degraded, r.degraded);
  EXPECT_EQ(p->failure, r.failure);
  EXPECT_EQ(p->error, r.error);
  EXPECT_EQ(p->original_rec, r.original_rec);
  EXPECT_EQ(p->new_rec, r.new_rec);
  EXPECT_EQ(p->search_space_size, r.search_space_size);
  EXPECT_EQ(p->candidates_considered, r.candidates_considered);
  EXPECT_EQ(p->tests_performed, r.tests_performed);
  EXPECT_DOUBLE_EQ(p->seconds, r.seconds);
  EXPECT_EQ(p->phase_seconds, r.phase_seconds);
  EXPECT_EQ(p->faults_fired, r.faults_fired);
  ASSERT_EQ(p->edges.size(), r.edges.size());
  for (size_t i = 0; i < r.edges.size(); ++i) {
    EXPECT_EQ(p->edges[i].src, r.edges[i].src);
    EXPECT_EQ(p->edges[i].dst, r.edges[i].dst);
    EXPECT_EQ(p->edges[i].type, r.edges[i].type);
  }
  // Re-serialization is byte-identical (stable key order, exact numbers).
  EXPECT_EQ(QueryRecordJson(*p), line);
}

TEST(QueryRecordTest, ParseRejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(ParseQueryRecord("{\"schema\": \"emigre.metrics.v1\"}").ok());
  EXPECT_FALSE(ParseQueryRecord("not json").ok());
}

TEST(QueryRecordTest, LogAppendsOneLinePerRecord) {
  std::string dir = test::MakeTempDir("querylog");
  std::string path = dir + "/q.jsonl";
  {
    Result<std::unique_ptr<QueryLog>> log = QueryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    QueryRecord r = MakeFullRecord();
    ASSERT_TRUE((*log)->Append(r).ok());
    r.query_id = 43;
    ASSERT_TRUE((*log)->Append(r).ok());
  }
  std::ifstream in(path);
  std::string line;
  std::vector<uint64_t> ids;
  while (std::getline(in, line)) {
    Result<QueryRecord> p = ParseQueryRecord(line);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    ids.push_back(p->query_id);
  }
  EXPECT_EQ(ids, (std::vector<uint64_t>{42, 43}));
}

TEST(QueryRecordTest, OpenAppendsToExistingFile) {
  std::string dir = test::MakeTempDir("querylog_append");
  std::string path = dir + "/q.jsonl";
  for (uint64_t id : {1u, 2u}) {
    Result<std::unique_ptr<QueryLog>> log = QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    QueryRecord r;
    r.query_id = id;
    ASSERT_TRUE((*log)->Append(r).ok());
  }
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
}

// --- Perf gate ------------------------------------------------------------

BenchDoc MakeBaselineDoc() {
  BenchDoc doc;
  doc.bench = "kernels";
  doc.scale = 0;
  doc.metrics.counters = {{"ppr.pushes", 10000}, {"tiny.counter", 4}};
  doc.metrics.gauges = {{"queue.depth", 128.0}};
  HistogramSample h;
  h.name = "explain.query.seconds";
  h.count = 100;
  h.sum = 2.0;
  h.min = 0.01;
  h.max = 0.05;
  h.buckets.assign(Histogram::kNumBuckets, 0);
  h.buckets[20] = 100;
  doc.metrics.histograms = {h};
  return doc;
}

TEST(PerfGateTest, IdenticalRunsPass) {
  BenchDoc base = MakeBaselineDoc();
  Result<PerfGateReport> report = ComparePerf(base, base, PerfGateOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->pass);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->compared, 0u);
  EXPECT_NE(report->Format().find("PASS"), std::string::npos);
}

TEST(PerfGateTest, InflatedCounterFailsAsRegression) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  cur.metrics.counters[0].value = 12000;  // +20% > 10% tolerance
  Result<PerfGateReport> report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  bool found = false;
  for (const PerfGateEntry& e : report->entries) {
    if (e.metric == "ppr.pushes") {
      found = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kRegression);
      EXPECT_NEAR(e.ratio, 1.2, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(report->Format().find("ppr.pushes"), std::string::npos);
}

TEST(PerfGateTest, DoubledBaselineLatencyFailsTheFreshRun) {
  // The acceptance scenario: inflate a baseline latency 2×; the unchanged
  // current run now sits below baseline/(1+tol) and must fail as stale.
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  base.metrics.histograms[0].sum *= 2.0;
  Result<PerfGateReport> report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  bool found = false;
  for (const PerfGateEntry& e : report->entries) {
    if (e.metric == "explain.query.seconds/sum") {
      found = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kOutOfBand);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateTest, LatencyToleranceIsWiderThanCounterTolerance) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  // +30% on a seconds/sum series: inside the 50% latency tolerance even
  // though it would fail the 10% counter tolerance.
  cur.metrics.histograms[0].sum *= 1.3;
  Result<PerfGateReport> report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass) << report->Format();
  // +120% breaches it.
  cur.metrics.histograms[0].sum = base.metrics.histograms[0].sum * 2.2;
  report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
}

TEST(PerfGateTest, NoiseFloorSilencesTinySeries) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  cur.metrics.counters[1].value = 12;  // 4 -> 12: 3x, but both under 16
  Result<PerfGateReport> report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass) << report->Format();
}

TEST(PerfGateTest, MissingMetricFailsButNewMetricDoesNot) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  cur.metrics.counters.erase(cur.metrics.counters.begin());  // drop ppr.pushes
  cur.metrics.gauges.push_back({"brand.new", 500.0});
  Result<PerfGateReport> report = ComparePerf(base, cur, PerfGateOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  bool missing = false, is_new = false;
  for (const PerfGateEntry& e : report->entries) {
    if (e.metric == "ppr.pushes") {
      missing = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kMissing);
      EXPECT_TRUE(e.Failed());
    }
    if (e.metric == "brand.new") {
      is_new = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kNew);
      EXPECT_FALSE(e.Failed());
    }
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(is_new);
}

TEST(PerfGateTest, SkipGlobsSilenceMatchedMetrics) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  cur.metrics.counters[0].value *= 5;  // wild drift on ppr.pushes
  PerfGateOptions opts;
  opts.skip = {"ppr.*"};
  Result<PerfGateReport> report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass) << report->Format();
  EXPECT_GT(report->skipped, 0u);
}

TEST(PerfGateTest, MismatchedBenchOrScaleIsUsageError) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc other_bench = base;
  other_bench.bench = "different";
  EXPECT_TRUE(ComparePerf(base, other_bench, PerfGateOptions{})
                  .status()
                  .IsInvalidArgument());
  BenchDoc other_scale = base;
  other_scale.scale = 2;
  EXPECT_TRUE(ComparePerf(base, other_scale, PerfGateOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(PerfGateTest, ConfigParsesFieldsAndSkips) {
  Result<PerfGateOptions> opts = ParsePerfGateConfig(
      "{\"schema\": \"emigre.perfgate.v1\", \"counter_tol\": 0.2, "
      "\"latency_tol\": 2.5, \"counter_min\": 32, \"latency_min\": 0.01, "
      "\"skip\": [\"ppr.cache.*\", \"*.cancelled\"]}");
  ASSERT_TRUE(opts.ok()) << opts.status().ToString();
  EXPECT_DOUBLE_EQ(opts->counter_tol, 0.2);
  EXPECT_DOUBLE_EQ(opts->latency_tol, 2.5);
  EXPECT_DOUBLE_EQ(opts->counter_min, 32.0);
  EXPECT_DOUBLE_EQ(opts->latency_min, 0.01);
  EXPECT_EQ(opts->skip,
            (std::vector<std::string>{"ppr.cache.*", "*.cancelled"}));
}

TEST(PerfGateTest, ConfigKeepsDefaultsForAbsentFieldsRejectsWrongSchema) {
  Result<PerfGateOptions> opts =
      ParsePerfGateConfig("{\"schema\": \"emigre.perfgate.v1\"}");
  ASSERT_TRUE(opts.ok());
  PerfGateOptions defaults;
  EXPECT_DOUBLE_EQ(opts->counter_tol, defaults.counter_tol);
  EXPECT_DOUBLE_EQ(opts->latency_tol, defaults.latency_tol);
  EXPECT_FALSE(ParsePerfGateConfig("{\"schema\": \"emigre.bench.v1\"}").ok());
  EXPECT_FALSE(ParsePerfGateConfig("[]").ok());
}

TEST(PerfGateTest, FloorsAssertAbsoluteMinimumsBelowTheNoiseFloor) {
  // A speedup gauge of ~1.4 sits far under counter_min=16, so the relative
  // band would skip it entirely; a floor still holds it to >= 1.0.
  BenchDoc base = MakeBaselineDoc();
  base.metrics.gauges.push_back({"bench.kernels.fast_speedup", 1.4});
  BenchDoc cur = base;
  PerfGateOptions opts;
  opts.floors["kernels"]["bench.kernels.fast_speedup"] = 1.0;

  Result<PerfGateReport> report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass) << report->Format();

  cur.metrics.gauges.back().value = 0.8;  // the kernel got slower than legacy
  report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  bool found = false;
  for (const PerfGateEntry& e : report->entries) {
    if (e.metric == "bench.kernels.fast_speedup") {
      found = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kBelowMin);
      EXPECT_DOUBLE_EQ(e.floor, 1.0);
      EXPECT_TRUE(e.Failed());
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(report->Format().find("BELOW-MIN"), std::string::npos);
}

TEST(PerfGateTest, FlooredMetricAbsentFromCurrentRunFails) {
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  PerfGateOptions opts;
  opts.floors["kernels"]["bench.kernels.fast_speedup"] = 1.0;
  // Neither side emits the gauge: the contract cannot be attested.
  Result<PerfGateReport> report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass);
  bool found = false;
  for (const PerfGateEntry& e : report->entries) {
    if (e.metric == "bench.kernels.fast_speedup") {
      found = true;
      EXPECT_EQ(e.verdict, PerfGateEntry::Verdict::kBelowMin);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PerfGateTest, FloorsScopeToTheirBench) {
  // The config is shared across bench pairs: another bench's floors must
  // not fail a run that never emits those metrics.
  BenchDoc base = MakeBaselineDoc();
  BenchDoc cur = base;
  PerfGateOptions opts;
  opts.floors["other_bench"]["bench.other.speedup"] = 1.0;
  Result<PerfGateReport> report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->pass) << report->Format();
}

TEST(PerfGateTest, FloorOutranksSkipGlobs) {
  BenchDoc base = MakeBaselineDoc();
  base.metrics.gauges.push_back({"bench.kernels.fast_speedup", 1.4});
  BenchDoc cur = base;
  cur.metrics.gauges.back().value = 0.5;
  PerfGateOptions opts;
  opts.skip = {"bench.*"};
  opts.floors["kernels"]["bench.kernels.fast_speedup"] = 1.0;
  Result<PerfGateReport> report = ComparePerf(base, cur, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->pass) << "a skip glob must not disable a hard floor";
}

TEST(PerfGateTest, ConfigParsesFloors) {
  Result<PerfGateOptions> opts = ParsePerfGateConfig(
      "{\"schema\": \"emigre.perfgate.v1\", \"floors\": {\"ppr_kernels\": "
      "{\"bench.ppr_kernels.repair_speedup\": 1.0, "
      "\"bench.ppr_kernels.fast_overall_speedup\": 0.5}}}");
  ASSERT_TRUE(opts.ok()) << opts.status().ToString();
  ASSERT_EQ(opts->floors.size(), 1u);
  const auto& kernels = opts->floors.at("ppr_kernels");
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_DOUBLE_EQ(kernels.at("bench.ppr_kernels.repair_speedup"), 1.0);
  EXPECT_DOUBLE_EQ(kernels.at("bench.ppr_kernels.fast_overall_speedup"), 0.5);
  // Malformed floors are config errors, not silent no-ops.
  EXPECT_FALSE(ParsePerfGateConfig(
                   "{\"schema\": \"emigre.perfgate.v1\", \"floors\": [1]}")
                   .ok());
  EXPECT_FALSE(ParsePerfGateConfig(
                   "{\"schema\": \"emigre.perfgate.v1\", "
                   "\"floors\": {\"b\": {\"m\": \"fast\"}}}")
                   .ok());
}

TEST(GlobMatchTest, WildcardsAnchorsAndQuestionMarks) {
  EXPECT_TRUE(GlobMatch("ppr.cache.*", "ppr.cache.hits"));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*.cancelled", "explain.parallel.cancelled"));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(GlobMatch("ppr.cache.*", "explain.tests"));
  EXPECT_FALSE(GlobMatch("abc", "abcd")) << "anchored at both ends";
  EXPECT_FALSE(GlobMatch("abcd", "abc"));
  EXPECT_TRUE(GlobMatch("h?t", "hit"));
  EXPECT_FALSE(GlobMatch("h?t", "heat"));
}

}  // namespace
}  // namespace emigre::obs
