// Negative-compile fixture: a function annotated ACQUIRE that can return
// without actually taking the lock — and a caller path that then never
// releases it — must be rejected by Clang's -Werror=thread-safety.
//
// See guarded_access.cc for the two-variant protocol (positive control via
// EMIGRE_NEGCOMPILE_CLEAN) and why the violation sits in a regular method
// rather than a constructor/destructor.

#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emigre {

class Ledger {
 public:
  void BeginMutation() ACQUIRE(mutex_) { mutex_.Lock(); }

  void EndMutation() RELEASE(mutex_) { mutex_.Unlock(); }

  void Record(size_t delta) {
    BeginMutation();
    total_ += delta;
#ifdef EMIGRE_NEGCOMPILE_CLEAN
    EndMutation();
#endif
    // Without EMIGRE_NEGCOMPILE_CLEAN the function returns still holding
    // mutex_: the analysis reports the capability as held at end of scope
    // with no matching release.
  }

 private:
  util::Mutex mutex_;
  size_t total_ GUARDED_BY(mutex_) = 0;
};

void Touch() {
  Ledger l;
  l.Record(1);
}

}  // namespace emigre
