// Negative-compile fixture: reading a GUARDED_BY member without holding
// its mutex must be rejected by Clang's -Werror=thread-safety.
//
// Compiled two ways by run_negative_compile.cmake:
//  - with EMIGRE_NEGCOMPILE_CLEAN defined: the access happens under a
//    MutexLock and the file MUST compile (positive control — proves a
//    failure below comes from the seeded violation, not a broken fixture).
//  - without it: the lock is skipped and compilation MUST fail with a
//    thread-safety diagnostic.
//
// The violations live in ordinary methods, never constructors or
// destructors: the analysis deliberately skips those (no concurrent access
// can exist before the object is published), so a violation seeded there
// would pass and the test would prove nothing.

#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emigre {

class Counter {
 public:
  void Increment() {
#ifdef EMIGRE_NEGCOMPILE_CLEAN
    util::MutexLock lock(&mutex_);
#endif
    ++count_;  // unguarded access when EMIGRE_NEGCOMPILE_CLEAN is absent
  }

  size_t Get() const {
    util::MutexLock lock(&mutex_);
    return count_;
  }

 private:
  mutable util::Mutex mutex_;
  size_t count_ GUARDED_BY(mutex_) = 0;
};

void Touch() {
  Counter c;
  c.Increment();
  (void)c.Get();
}

}  // namespace emigre
