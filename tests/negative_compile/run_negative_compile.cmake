# Driver for the negative-compile thread-safety tests (cmake -P script).
#
# Each fixture under tests/negative_compile/ seeds one thread-safety
# violation that Clang's -Werror=thread-safety must reject, plus a clean
# variant (EMIGRE_NEGCOMPILE_CLEAN) that must compile — the positive
# control proving the failure comes from the seeded violation, not from a
# fixture that never compiled in the first place.
#
# Expected -D definitions:
#   NEGCOMPILE_COMPILER  - path to clang++ (the analysis is Clang-only)
#   NEGCOMPILE_SOURCE    - the fixture .cc file
#   NEGCOMPILE_INCLUDE   - the repo's src/ directory
#
# Exit status 0 = test passed (clean variant compiled AND violation
# variant was rejected with a thread-safety diagnostic).

set(common_flags
    -std=c++20 -fsyntax-only
    -Wthread-safety -Werror=thread-safety
    -I "${NEGCOMPILE_INCLUDE}")

# Positive control: the fixture with the violation patched out must
# compile cleanly, or the test proves nothing.
execute_process(
  COMMAND "${NEGCOMPILE_COMPILER}" ${common_flags}
          -DEMIGRE_NEGCOMPILE_CLEAN "${NEGCOMPILE_SOURCE}"
  RESULT_VARIABLE clean_result
  ERROR_VARIABLE clean_stderr)
if(NOT clean_result EQUAL 0)
  message(FATAL_ERROR
      "positive control failed: ${NEGCOMPILE_SOURCE} did not compile even "
      "with the violation patched out (fixture is broken, not the "
      "analysis):\n${clean_stderr}")
endif()

# The seeded violation must be rejected, and rejected for the right
# reason: a thread-safety diagnostic, not some unrelated error.
execute_process(
  COMMAND "${NEGCOMPILE_COMPILER}" ${common_flags} "${NEGCOMPILE_SOURCE}"
  RESULT_VARIABLE violation_result
  ERROR_VARIABLE violation_stderr)
if(violation_result EQUAL 0)
  message(FATAL_ERROR
      "negative-compile test failed: the seeded violation in "
      "${NEGCOMPILE_SOURCE} compiled cleanly — the thread-safety analysis "
      "is not rejecting it")
endif()
if(NOT violation_stderr MATCHES "thread-safety")
  message(FATAL_ERROR
      "negative-compile test failed: ${NEGCOMPILE_SOURCE} was rejected, "
      "but not by the thread-safety analysis:\n${violation_stderr}")
endif()

message(STATUS "negative-compile ok: ${NEGCOMPILE_SOURCE} rejected with a "
               "thread-safety diagnostic; clean variant compiles")
