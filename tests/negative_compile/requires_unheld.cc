// Negative-compile fixture: calling a REQUIRES(mutex_) function without
// holding the lock must be rejected by Clang's -Werror=thread-safety.
//
// This is the regression guard for the comment-to-contract conversions
// (PprCache::InstallLocked, FaultRegistry::CountArmedLocked): the whole
// point of replacing "caller must hold mu" comments with REQUIRES is that
// this call pattern stops compiling. See guarded_access.cc for the
// two-variant protocol.

#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emigre {

class Store {
 public:
  void Install(size_t key) {
#ifdef EMIGRE_NEGCOMPILE_CLEAN
    util::MutexLock lock(&mutex_);
#endif
    InstallLocked(key);  // REQUIRES(mutex_) — illegal without the lock
  }

 private:
  void InstallLocked(size_t key) REQUIRES(mutex_) { last_key_ = key; }

  util::Mutex mutex_;
  size_t last_key_ GUARDED_BY(mutex_) = 0;
};

void Touch() {
  Store s;
  s.Install(7);
}

}  // namespace emigre
