#include <gtest/gtest.h>

#include "explain/combined.h"
#include "explain/emigre.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

// ---------------------------------------------------------------------------
// Combined Add/Remove mode
// ---------------------------------------------------------------------------

TEST(CombinedTest, FindsVerifiedMixedExplanation) {
  test::ScenarioFixture f = test::MakeRemoveFriendlyCase();
  const graph::HinGraph& g = f.g;
  const EmigreOptions& opts = f.opts;
  NodeId user = f.user;
  NodeId wni = f.wni;

  Result<CombinedExplanation> r =
      RunCombinedIncremental(g, WhyNotQuestion{user, wni}, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found) << FailureReasonName(r->failure);
  EXPECT_EQ(r->new_rec, wni);
  EXPECT_GT(r->size(), 0u);

  // Re-verify through a mixed tester.
  ExplanationTester checker(g, user, wni, opts);
  std::vector<ExplanationTester::ModedEdit> edits;
  for (const graph::EdgeRef& e : r->added) {
    edits.push_back({e, Mode::kAdd});
  }
  for (const graph::EdgeRef& e : r->removed) {
    edits.push_back({e, Mode::kRemove});
  }
  EXPECT_TRUE(checker.TestMixed(edits));
}

TEST(CombinedTest, EditsAreWellFormed) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(bg.paul);
  NodeId wni = ranking.at(ranking.size() - 1).item;
  Result<CombinedExplanation> r =
      RunCombinedIncremental(bg.g, WhyNotQuestion{bg.paul, wni}, opts);
  ASSERT_TRUE(r.ok());
  for (const graph::EdgeRef& e : r->removed) {
    EXPECT_TRUE(bg.g.HasEdge(e.src, e.dst, e.type));
    EXPECT_EQ(e.src, bg.paul);
  }
  for (const graph::EdgeRef& e : r->added) {
    EXPECT_FALSE(bg.g.HasEdge(e.src, e.dst, e.type));
    EXPECT_EQ(e.src, bg.paul);
  }
}

TEST(CombinedTest, SucceedsAtLeastWhereSingleModesDo) {
  Rng rng(90210);
  for (int trial = 0; trial < 6; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 5, 15, 3, 5);
    EmigreOptions opts = test::MakeRandomHinOptions(rh);
    Emigre engine(rh.g, opts);
    NodeId user = rh.users[0];
    recsys::RecommendationList ranking = engine.CurrentRanking(user);
    if (ranking.size() < 2) continue;
    NodeId wni = ranking.at(1).item;

    Result<Explanation> add = engine.Explain(WhyNotQuestion{user, wni},
                                             Mode::kAdd,
                                             Heuristic::kIncremental);
    ASSERT_TRUE(add.ok());
    Result<CombinedExplanation> combined =
        RunCombinedIncremental(rh.g, WhyNotQuestion{user, wni}, opts);
    ASSERT_TRUE(combined.ok());
    // Combined merges both candidate lists; greedy order may differ, but
    // when the add-only greedy finds a solution, the merged greedy should
    // too (its candidate stream is a superset).
    if (add->found) {
      EXPECT_TRUE(combined->found);
    }
  }
}

// ---------------------------------------------------------------------------
// Meta-explanations (§6.4)
// ---------------------------------------------------------------------------

TEST(MetaTest, DiagnosesColdStart) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  NodeId newbie = bg.g.AddNode(bg.user_type, "Newbie");

  Result<SearchSpace> space = BuildRemoveSearchSpace(
      bg.g, newbie, graph::kInvalidNode, bg.lotr, opts);
  ASSERT_TRUE(space.ok()) << space.status();
  Explanation failed;
  failed.found = false;
  failed.failure = FailureReason::kColdStart;
  MetaExplanation meta = DiagnoseFailure(bg.g, space.value(), failed, opts);
  EXPECT_EQ(meta.reason, FailureReason::kColdStart);
  EXPECT_NE(meta.message.find("cold start"), std::string::npos);
  EXPECT_NE(meta.message.find("Newbie"), std::string::npos);
}

TEST(MetaTest, DiagnosesPopularItem) {
  // A hub item endorsed by many users dominates; the probe user's single
  // removable action cannot demote it (paper Fig. 7).
  graph::HinGraph g;
  graph::NodeTypeId user_type = g.RegisterNodeType("user");
  graph::NodeTypeId item_type = g.RegisterNodeType("item");
  graph::EdgeTypeId rated = g.RegisterEdgeType("rated");

  NodeId probe = g.AddNode(user_type, "Paul");
  NodeId hub = g.AddNode(item_type, "Bestseller");
  NodeId niche = g.AddNode(item_type, "Niche");
  NodeId bridge = g.AddNode(item_type, "Bridge");
  // The probe's one action points at a bridge item linked to the hub.
  ASSERT_TRUE(g.AddBidirectional(probe, bridge, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(bridge, hub, rated).ok());
  ASSERT_TRUE(g.AddBidirectional(bridge, niche, rated).ok());
  // Ten other fans pump the hub's popularity.
  for (int i = 0; i < 10; ++i) {
    NodeId fan = g.AddNode(user_type);
    ASSERT_TRUE(g.AddBidirectional(fan, hub, rated).ok());
  }

  EmigreOptions opts;
  opts.rec.item_type = item_type;
  opts.allowed_edge_types = {rated};
  opts.add_edge_type = rated;

  Emigre engine(g, opts);
  NodeId rec = engine.CurrentRanking(probe).Top();
  ASSERT_EQ(rec, hub);  // the hub wins on popularity

  Result<Explanation> r = engine.Explain(WhyNotQuestion{probe, niche},
                                         Mode::kRemove,
                                         Heuristic::kBruteForce);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->found);

  Result<SearchSpace> space =
      BuildRemoveSearchSpace(g, probe, rec, niche, opts);
  ASSERT_TRUE(space.ok());
  MetaExplanation meta = DiagnoseFailure(g, space.value(), r.value(), opts);
  EXPECT_EQ(meta.reason, FailureReason::kPopularItem);
  EXPECT_NE(meta.message.find("popular"), std::string::npos);
}

TEST(MetaTest, NoDiagnosisForSuccess) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Explanation ok_expl;
  ok_expl.found = true;
  SearchSpace dummy;
  dummy.user = bg.paul;
  MetaExplanation meta = DiagnoseFailure(bg.g, dummy, ok_expl, opts);
  EXPECT_EQ(meta.reason, FailureReason::kNone);
}

TEST(MetaTest, BudgetExceededPassesThroughInAddMode) {
  // The popular-item probe applies to Remove mode only; an Add-mode budget
  // failure is reported as such.
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(bg.paul);
  NodeId wni = ranking.at(1).item;
  Result<SearchSpace> space =
      BuildAddSearchSpace(bg.g, bg.paul, ranking.Top(), wni, opts);
  ASSERT_TRUE(space.ok());
  ASSERT_FALSE(space->actions.empty());
  Explanation failed;
  failed.found = false;
  failed.failure = FailureReason::kBudgetExceeded;
  MetaExplanation meta = DiagnoseFailure(bg.g, space.value(), failed, opts);
  EXPECT_EQ(meta.reason, FailureReason::kBudgetExceeded);
}

TEST(MetaTest, OutOfScopeSuggestsCombinedMode) {
  test::BookGraph bg = test::MakeBookGraph();
  EmigreOptions opts = test::MakeBookOptions(bg);
  Emigre engine(bg.g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(bg.paul);
  NodeId wni = ranking.at(1).item;
  Result<SearchSpace> space =
      BuildAddSearchSpace(bg.g, bg.paul, ranking.Top(), wni, opts);
  ASSERT_TRUE(space.ok());
  ASSERT_FALSE(space->actions.empty());
  Explanation failed;
  failed.found = false;
  failed.failure = FailureReason::kSearchExhausted;
  MetaExplanation meta = DiagnoseFailure(bg.g, space.value(), failed, opts);
  EXPECT_EQ(meta.reason, FailureReason::kSearchExhausted);
  EXPECT_NE(meta.message.find("combined"), std::string::npos);
}

}  // namespace
}  // namespace emigre::explain
