#include "graph/csr_overlay.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "graph/csr.h"
#include "graph/overlay.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::graph {
namespace {

using Snapshot = std::map<std::tuple<NodeId, NodeId, EdgeTypeId>, double>;

template <typename G>
Snapshot SnapshotOutEdges(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
      snap[{n, dst, t}] += w;
    });
  }
  return snap;
}

template <typename G>
Snapshot SnapshotInEdges(const G& g) {
  Snapshot snap;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
      snap[{src, n, t}] += w;
    });
  }
  return snap;
}

TEST(CsrOverlayTest, TransparentWithoutEdits) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  CsrOverlay o(csr);
  EXPECT_FALSE(o.HasEdits());
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
  EXPECT_EQ(SnapshotInEdges(o), SnapshotInEdges(bg.g));
  for (NodeId n = 0; n < bg.g.NumNodes(); ++n) {
    EXPECT_DOUBLE_EQ(o.OutWeight(n), bg.g.OutWeight(n));
    EXPECT_EQ(o.OutDegree(n), bg.g.OutDegree(n));
    EXPECT_EQ(o.InDegree(n), bg.g.InDegree(n));
    EXPECT_EQ(o.NodeType(n), bg.g.NodeType(n));
  }
}

TEST(CsrOverlayTest, MatchesGraphOverlaySemantics) {
  // The same edit sequence applied to a GraphOverlay (over the HinGraph)
  // and a CsrOverlay (over the CSR snapshot) must produce identical
  // effective graphs AND identical Status outcomes — including the error
  // cases (duplicate add, double removal, missing SetWeight target).
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  GraphOverlay ref(bg.g);
  CsrOverlay o(csr);

  struct Op {
    int kind;  // 0 = add, 1 = remove, 2 = set-weight
    NodeId src, dst;
    EdgeTypeId type;
    double weight;
  };
  std::vector<Op> ops = {
      {1, bg.paul, bg.candide, bg.rated, 0.0},     // remove base edge
      {1, bg.paul, bg.candide, bg.rated, 0.0},     // double removal -> error
      {0, bg.paul, bg.candide, bg.rated, 2.5},     // un-remove w/ new weight
      {0, bg.paul, bg.lotr, bg.rated, 1.0},        // fresh addition
      {0, bg.paul, bg.lotr, bg.rated, 1.0},        // duplicate add -> error
      {1, bg.paul, bg.lotr, bg.rated, 0.0},        // undo the addition
      {0, bg.alice, bg.c_lang, bg.rated, 3.0},     // addition that stays
      {2, bg.alice, bg.c_lang, bg.rated, 0.5},     // re-weight added edge
      {2, bg.bob, bg.python, bg.rated, 4.0},       // re-weight base edge
      {2, bg.paul, bg.lotr, bg.rated, 9.0},        // absent edge -> error
      {1, bg.bob, bg.python, bg.rated, 0.0},       // remove re-weighted edge
  };
  for (const Op& op : ops) {
    Status ref_st, csr_st;
    if (op.kind == 0) {
      ref_st = ref.AddEdge(op.src, op.dst, op.type, op.weight);
      csr_st = o.AddEdge(op.src, op.dst, op.type, op.weight);
    } else if (op.kind == 1) {
      ref_st = ref.RemoveEdge(op.src, op.dst, op.type);
      csr_st = o.RemoveEdge(op.src, op.dst, op.type);
    } else {
      ref_st = ref.SetWeight(op.src, op.dst, op.type, op.weight);
      csr_st = o.SetWeight(op.src, op.dst, op.type, op.weight);
    }
    EXPECT_EQ(ref_st.code(), csr_st.code())
        << "op kind " << op.kind << " " << op.src << "->" << op.dst;
    EXPECT_EQ(SnapshotOutEdges(ref), SnapshotOutEdges(o));
    EXPECT_EQ(SnapshotInEdges(ref), SnapshotInEdges(o));
    for (NodeId n = 0; n < bg.g.NumNodes(); ++n) {
      EXPECT_DOUBLE_EQ(ref.OutWeight(n), o.OutWeight(n)) << "node " << n;
      EXPECT_EQ(ref.OutDegree(n), o.OutDegree(n)) << "node " << n;
      EXPECT_EQ(ref.InDegree(n), o.InDegree(n)) << "node " << n;
    }
    EXPECT_EQ(ref.NumAdded(), o.NumAdded());
    EXPECT_EQ(ref.NumRemoved(), o.NumRemoved());
    EXPECT_EQ(ref.AddedEdges(), o.AddedEdges());
    EXPECT_EQ(ref.RemovedEdges(), o.RemovedEdges());
  }
}

TEST(CsrOverlayTest, MatchesGraphOverlayOnRandomEditSequences) {
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    test::RandomHin rh = test::MakeRandomHin(rng, 6, 20, 3, 5);
    CsrGraph csr(rh.g);
    GraphOverlay ref(rh.g);
    CsrOverlay o(csr);
    for (int step = 0; step < 40; ++step) {
      NodeId src = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      NodeId dst = static_cast<NodeId>(rng.NextBounded(rh.g.NumNodes()));
      EdgeTypeId t = static_cast<EdgeTypeId>(
          rng.NextBounded(rh.g.NumEdgeTypes()));
      int kind = static_cast<int>(rng.NextBounded(3));
      Status ref_st, csr_st;
      if (kind == 0) {
        ref_st = ref.AddEdge(src, dst, t, 1.5);
        csr_st = o.AddEdge(src, dst, t, 1.5);
      } else if (kind == 1) {
        ref_st = ref.RemoveEdge(src, dst, t);
        csr_st = o.RemoveEdge(src, dst, t);
      } else {
        ref_st = ref.SetWeight(src, dst, t, 2.0);
        csr_st = o.SetWeight(src, dst, t, 2.0);
      }
      ASSERT_EQ(ref_st.code(), csr_st.code())
          << "round " << round << " step " << step;
    }
    EXPECT_EQ(SnapshotOutEdges(ref), SnapshotOutEdges(o));
    EXPECT_EQ(SnapshotInEdges(ref), SnapshotInEdges(o));
    for (NodeId n = 0; n < rh.g.NumNodes(); ++n) {
      EXPECT_DOUBLE_EQ(ref.OutWeight(n), o.OutWeight(n));
    }
  }
}

TEST(CsrOverlayTest, ClearRestoresBaseAndAdjacencyOrder) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  CsrOverlay o(csr);

  auto order_of = [&](NodeId n) {
    std::vector<NodeId> order;
    o.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId, double) {
      order.push_back(dst);
    });
    return order;
  };
  std::vector<NodeId> before = order_of(bg.paul);

  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  EXPECT_TRUE(o.HasEdits());
  o.Clear();
  EXPECT_FALSE(o.HasEdits());
  EXPECT_EQ(o.NumAdded(), 0u);
  EXPECT_EQ(o.NumRemoved(), 0u);
  EXPECT_EQ(SnapshotOutEdges(o), SnapshotOutEdges(bg.g));
  // The property the fast tester's bitwise determinism rests on: after
  // Clear, edges come back in the ORIGINAL order (a mutated HinGraph would
  // have moved the re-added edge to the end of the adjacency list).
  EXPECT_EQ(order_of(bg.paul), before);
}

TEST(CsrOverlayTest, HasEdgeReflectsEdits) {
  test::BookGraph bg = test::MakeBookGraph();
  CsrGraph csr(bg.g);
  CsrOverlay o(csr);
  EXPECT_TRUE(o.HasEdge(bg.paul, bg.candide));
  EXPECT_TRUE(o.HasEdge(bg.paul, bg.candide, bg.rated));
  ASSERT_TRUE(o.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  EXPECT_FALSE(o.HasEdge(bg.paul, bg.candide));
  EXPECT_FALSE(o.HasEdge(bg.paul, bg.candide, bg.rated));
  ASSERT_TRUE(o.AddEdge(bg.paul, bg.lotr, bg.rated, 1.0).ok());
  EXPECT_TRUE(o.HasEdge(bg.paul, bg.lotr, bg.rated));
  EXPECT_FALSE(csr.HasEdge(bg.paul, bg.lotr));  // base untouched
}

}  // namespace
}  // namespace emigre::graph
