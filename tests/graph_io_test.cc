#include "graph/io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "graph/validate.h"
#include "test_util.h"

namespace emigre::graph {
namespace {

TEST(GraphIoTest, SaveLoadRoundTrip) {
  test::BookGraph bg = test::MakeBookGraph();
  std::string path = test::MakeTempDir("graphio") + "/book.graph";
  ASSERT_TRUE(SaveGraph(bg.g, path).ok());

  Result<HinGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const HinGraph& g2 = loaded.value();

  EXPECT_EQ(g2.NumNodes(), bg.g.NumNodes());
  EXPECT_EQ(g2.NumEdges(), bg.g.NumEdges());
  EXPECT_TRUE(ValidateGraph(g2).ok());
  for (NodeId n = 0; n < bg.g.NumNodes(); ++n) {
    EXPECT_EQ(g2.Label(n), bg.g.Label(n));
    EXPECT_EQ(g2.NodeTypeName(g2.NodeType(n)),
              bg.g.NodeTypeName(bg.g.NodeType(n)));
  }
  for (const EdgeRef& e : bg.g.AllEdges()) {
    EXPECT_TRUE(g2.HasEdge(e.src, e.dst)) << e.src << "->" << e.dst;
  }
  // Weights preserved exactly.
  EXPECT_DOUBLE_EQ(
      g2.EdgeWeight(bg.paul, bg.candide, g2.FindEdgeType("rated")),
      bg.g.EdgeWeight(bg.paul, bg.candide, bg.rated));
}

TEST(GraphIoTest, PreservesFractionalWeights) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  EdgeTypeId t = g.RegisterEdgeType("sim");
  ASSERT_TRUE(g.AddEdge(a, b, t, 0.123456789012345).ok());
  std::string path = test::MakeTempDir("graphio") + "/w.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  Result<HinGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(a, b, loaded->FindEdgeType("sim")),
                   0.123456789012345);
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_TRUE(LoadGraph("/nonexistent/x.graph").status().IsIOError());
  HinGraph g;
  EXPECT_TRUE(SaveGraph(g, "/nonexistent/dir/x.graph").IsIOError());
}

TEST(GraphIoTest, RejectsMissingHeader) {
  std::string path = test::MakeTempDir("graphio") + "/bad.graph";
  std::ofstream(path) << "N\t0\tuser\tlabel\n";
  EXPECT_TRUE(LoadGraph(path).status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsMalformedLines) {
  std::string dir = test::MakeTempDir("graphio");
  {
    std::ofstream f(dir + "/badnode.graph");
    f << "# emigre-graph v1\nN\tzero\tuser\tx\n";
  }
  EXPECT_TRUE(LoadGraph(dir + "/badnode.graph").status().IsInvalidArgument());
  {
    std::ofstream f(dir + "/badedge.graph");
    f << "# emigre-graph v1\nN\t0\tuser\t\nE\t0\t0\trated\n";
  }
  EXPECT_TRUE(LoadGraph(dir + "/badedge.graph").status().IsInvalidArgument());
  {
    std::ofstream f(dir + "/badtype.graph");
    f << "# emigre-graph v1\nX\t0\n";
  }
  EXPECT_TRUE(LoadGraph(dir + "/badtype.graph").status().IsInvalidArgument());
}

// An unreadable path must surface an error, never an empty graph.
TEST(GraphIoTest, UnreadablePathFails) {
  std::string dir = test::MakeTempDir("graphio");
  Result<HinGraph> loaded = LoadGraph(dir);  // a directory, not a file
  EXPECT_FALSE(loaded.ok());
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  HinGraph g;
  std::string path = test::MakeTempDir("graphio") + "/empty.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  Result<HinGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

}  // namespace
}  // namespace emigre::graph
