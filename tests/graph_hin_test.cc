#include "graph/hin_graph.h"

#include <gtest/gtest.h>

#include "graph/validate.h"
#include "test_util.h"

namespace emigre::graph {
namespace {

TEST(HinGraphTest, AddNodesAssignsDenseIds) {
  HinGraph g;
  NodeTypeId user = g.RegisterNodeType("user");
  NodeTypeId item = g.RegisterNodeType("item");
  EXPECT_EQ(g.AddNode(user, "u0"), 0u);
  EXPECT_EQ(g.AddNode(item, "i0"), 1u);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NodeType(0), user);
  EXPECT_EQ(g.NodeType(1), item);
  EXPECT_EQ(g.Label(0), "u0");
  EXPECT_TRUE(g.IsValidNode(1));
  EXPECT_FALSE(g.IsValidNode(2));
}

TEST(HinGraphTest, TypeRegistryRoundTrip) {
  HinGraph g;
  NodeTypeId user = g.RegisterNodeType("user");
  EXPECT_EQ(g.RegisterNodeType("user"), user);  // idempotent
  EXPECT_EQ(g.FindNodeType("user"), user);
  EXPECT_EQ(g.FindNodeType("ghost"), kInvalidNodeType);
  EXPECT_EQ(g.NodeTypeName(user), "user");
  EdgeTypeId rated = g.RegisterEdgeType("rated");
  EXPECT_EQ(g.FindEdgeType("rated"), rated);
  EXPECT_EQ(g.EdgeTypeName(rated), "rated");
  EXPECT_EQ(g.NumNodeTypes(), 1u);
  EXPECT_EQ(g.NumEdgeTypes(), 1u);
}

TEST(HinGraphTest, AddEdgeMaintainsBothAdjacencies) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  EdgeTypeId t = g.RegisterEdgeType("e");
  ASSERT_TRUE(g.AddEdge(a, b, t, 2.5).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
  EXPECT_EQ(g.OutDegree(b), 0u);
  EXPECT_EQ(g.InDegree(a), 0u);
  EXPECT_DOUBLE_EQ(g.OutWeight(a), 2.5);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(a, b, t));
  EXPECT_FALSE(g.HasEdge(b, a));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(a, b, t), 2.5);
}

TEST(HinGraphTest, RejectsBadEdges) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  EdgeTypeId t = g.RegisterEdgeType("e");
  EXPECT_TRUE(g.AddEdge(a, 99, t).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(99, b, t).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, b, t, 0.0).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(a, b, t, -1.0).IsInvalidArgument());
  ASSERT_TRUE(g.AddEdge(a, b, t).ok());
  EXPECT_TRUE(g.AddEdge(a, b, t).IsAlreadyExists());
}

TEST(HinGraphTest, MultiEdgesWithDistinctTypes) {
  HinGraph g;
  NodeId u = g.AddNode("user");
  NodeId i = g.AddNode("item");
  EdgeTypeId rated = g.RegisterEdgeType("rated");
  EdgeTypeId reviewed = g.RegisterEdgeType("reviewed");
  ASSERT_TRUE(g.AddEdge(u, i, rated, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(u, i, reviewed, 0.5).ok());
  EXPECT_EQ(g.OutDegree(u), 2u);
  EXPECT_DOUBLE_EQ(g.OutWeight(u), 1.5);
  EXPECT_TRUE(g.HasEdge(u, i, rated));
  EXPECT_TRUE(g.HasEdge(u, i, reviewed));
}

TEST(HinGraphTest, RemoveEdgeRestoresState) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  EdgeTypeId t = g.RegisterEdgeType("e");
  ASSERT_TRUE(g.AddEdge(a, b, t, 2.0).ok());
  ASSERT_TRUE(g.RemoveEdge(a, b, t).ok());
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.OutDegree(a), 0u);
  EXPECT_EQ(g.InDegree(b), 0u);
  EXPECT_DOUBLE_EQ(g.OutWeight(a), 0.0);
  EXPECT_FALSE(g.HasEdge(a, b));
  EXPECT_TRUE(g.RemoveEdge(a, b, t).IsNotFound());
}

TEST(HinGraphTest, RemoveEdgesBetweenClearsAllTypes) {
  HinGraph g;
  NodeId u = g.AddNode("user");
  NodeId i = g.AddNode("item");
  EdgeTypeId rated = g.RegisterEdgeType("rated");
  EdgeTypeId reviewed = g.RegisterEdgeType("reviewed");
  ASSERT_TRUE(g.AddEdge(u, i, rated).ok());
  ASSERT_TRUE(g.AddEdge(u, i, reviewed).ok());
  EXPECT_EQ(g.RemoveEdgesBetween(u, i), 2u);
  EXPECT_FALSE(g.HasEdge(u, i));
  EXPECT_EQ(g.RemoveEdgesBetween(u, i), 0u);
}

TEST(HinGraphTest, AddBidirectionalCreatesBothDirections) {
  HinGraph g;
  NodeId a = g.AddNode("n");
  NodeId b = g.AddNode("n");
  EdgeTypeId t = g.RegisterEdgeType("e");
  ASSERT_TRUE(g.AddBidirectional(a, b, t, 1.5).ok());
  EXPECT_TRUE(g.HasEdge(a, b, t));
  EXPECT_TRUE(g.HasEdge(b, a, t));
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(HinGraphTest, NodesOfTypeAndDisplayName) {
  HinGraph g;
  NodeTypeId user = g.RegisterNodeType("user");
  NodeTypeId item = g.RegisterNodeType("item");
  NodeId u = g.AddNode(user, "Paul");
  NodeId i = g.AddNode(item);
  g.AddNode(user, "Alice");
  EXPECT_EQ(g.NodesOfType(user).size(), 2u);
  EXPECT_EQ(g.NodesOfType(item).size(), 1u);
  EXPECT_EQ(g.DisplayName(u), "Paul");
  EXPECT_EQ(g.DisplayName(i), "#1");
  g.SetLabel(i, "Python");
  EXPECT_EQ(g.DisplayName(i), "Python");
}

TEST(HinGraphTest, AllEdgesEnumerates) {
  test::BookGraph bg = test::MakeBookGraph();
  std::vector<EdgeRef> edges = bg.g.AllEdges();
  EXPECT_EQ(edges.size(), bg.g.NumEdges());
  for (const EdgeRef& e : edges) {
    EXPECT_TRUE(bg.g.HasEdge(e.src, e.dst, e.type));
  }
}

TEST(HinGraphTest, CopyIsIndependent) {
  test::BookGraph bg = test::MakeBookGraph();
  HinGraph copy = bg.g;
  ASSERT_TRUE(copy.RemoveEdge(bg.paul, bg.candide, bg.rated).ok());
  EXPECT_TRUE(bg.g.HasEdge(bg.paul, bg.candide, bg.rated));
  EXPECT_FALSE(copy.HasEdge(bg.paul, bg.candide, bg.rated));
}

TEST(ValidateTest, BookGraphIsConsistent) {
  test::BookGraph bg = test::MakeBookGraph();
  EXPECT_TRUE(ValidateGraph(bg.g).ok());
}

TEST(ValidateTest, DetectsMutationConsistency) {
  test::BookGraph bg = test::MakeBookGraph();
  // A long add/remove sequence keeps the graph valid.
  ASSERT_TRUE(bg.g.RemoveEdge(bg.paul, bg.c_lang, bg.rated).ok());
  ASSERT_TRUE(bg.g.AddEdge(bg.paul, bg.python, bg.rated, 0.7).ok());
  ASSERT_TRUE(bg.g.RemoveEdge(bg.alice, bg.candide, bg.rated).ok());
  EXPECT_TRUE(ValidateGraph(bg.g).ok());
}

TEST(EdgeRefTest, OrderingAndHashing) {
  EdgeRef a{1, 2, 0};
  EdgeRef b{1, 2, 1};
  EdgeRef c{1, 3, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (EdgeRef{1, 2, 0}));
  EdgeRefHash hash;
  EXPECT_NE(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace emigre::graph
