#include "util/string_util.h"

#include <gtest/gtest.h>

namespace emigre {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("emigre_graph", "emigre"));
  EXPECT_FALSE(StartsWith("emigre", "emigre_graph"));
  EXPECT_TRUE(EndsWith("test.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "test.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("  13  ", &v));
  EXPECT_EQ(v, 13);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
  EXPECT_FALSE(ParseDouble("3.14pie", &v));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5, 4), "1.5");
  EXPECT_EQ(FormatDouble(12.0, 4), "12");
  EXPECT_EQ(FormatDouble(0.003, 4), "0.003");
  EXPECT_EQ(FormatDouble(-2.25, 2), "-2.25");
  EXPECT_EQ(FormatDouble(0.0, 4), "0");
}

TEST(FormatDurationTest, PicksUnits) {
  EXPECT_EQ(FormatDuration(0.0000005), "0.5us");
  EXPECT_EQ(FormatDuration(0.0032), "3.2ms");
  EXPECT_EQ(FormatDuration(1.456), "1.46s");
  EXPECT_EQ(FormatDuration(125.0), "2m05.0s");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace emigre
