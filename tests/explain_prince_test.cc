#include "explain/prince.h"

#include <gtest/gtest.h>

#include "explain/emigre.h"
#include "graph/overlay.h"
#include "recsys/recommender.h"
#include "test_util.h"
#include "util/rng.h"

namespace emigre::explain {
namespace {

using graph::NodeId;

PrinceOptions MakePrinceOptions(const test::BookGraph& bg) {
  PrinceOptions opts;
  opts.emigre = test::MakeBookOptions(bg);
  return opts;
}

TEST(PrinceTest, FindsCounterfactualOnBookGraph) {
  test::BookGraph bg = test::MakeBookGraph();
  PrinceOptions opts = MakePrinceOptions(bg);
  Result<PrinceResult> r = RunPrince(bg.g, bg.paul, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  NodeId rec = recsys::Recommend(bg.g, bg.paul, opts.emigre.rec);
  EXPECT_EQ(r->original_rec, rec);
  if (r->found) {
    EXPECT_FALSE(r->actions.empty());
    EXPECT_NE(r->replacement, rec);
    // Re-verify: applying the removals really changes the recommendation.
    graph::GraphOverlay o(bg.g);
    for (const graph::EdgeRef& e : r->actions) {
      ASSERT_TRUE(o.RemoveEdge(e.src, e.dst, e.type).ok());
    }
    EXPECT_EQ(recsys::Recommend(o, bg.paul, opts.emigre.rec),
              r->replacement);
  }
}

TEST(PrinceTest, ActionsAreUserRootedAllowedEdges) {
  test::BookGraph bg = test::MakeBookGraph();
  PrinceOptions opts = MakePrinceOptions(bg);
  Result<PrinceResult> r = RunPrince(bg.g, bg.paul, opts);
  ASSERT_TRUE(r.ok());
  for (const graph::EdgeRef& e : r->actions) {
    EXPECT_EQ(e.src, bg.paul);
    EXPECT_EQ(e.type, bg.rated);
    EXPECT_TRUE(bg.g.HasEdge(e.src, e.dst, e.type));
  }
}

TEST(PrinceTest, NoActionsMeansNotFound) {
  test::BookGraph bg = test::MakeBookGraph();
  NodeId newbie = bg.g.AddNode(bg.user_type, "Newbie");
  // Give the newbie a follows edge (not in T_e) so a recommendation exists.
  ASSERT_TRUE(bg.g.AddEdge(newbie, bg.alice, bg.follows).ok());
  PrinceOptions opts = MakePrinceOptions(bg);
  Result<PrinceResult> r = RunPrince(bg.g, newbie, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->found);
}

TEST(PrinceTest, InvalidUserRejected) {
  test::BookGraph bg = test::MakeBookGraph();
  EXPECT_TRUE(
      RunPrince(bg.g, 999, MakePrinceOptions(bg)).status().IsInvalidArgument());
}

// The paper's motivating contrast (Fig. 1 vs Fig. 2): a PRINCE Why
// explanation generally does not answer a Why-Not question — its
// replacement item is whatever overtakes rec, not the user's item of
// interest.
TEST(PrinceTest, WhyExplanationDoesNotAnswerWhyNot) {
  Rng rng(777);
  bool observed_mismatch = false;
  for (int trial = 0; trial < 10 && !observed_mismatch; ++trial) {
    test::RandomHin rh = test::MakeRandomHin(rng, 6, 18, 3, 5);
    EmigreOptions eopts = test::MakeRandomHinOptions(rh);
    PrinceOptions popts;
    popts.emigre = eopts;
    for (NodeId user : rh.users) {
      recsys::RecommendationList ranking =
          recsys::RankItems(rh.g, user, eopts.rec);
      if (ranking.size() < 3) continue;
      Result<PrinceResult> pr = RunPrince(rh.g, user, popts);
      ASSERT_TRUE(pr.ok());
      if (!pr->found) continue;
      // Pick a Why-Not item that differs from PRINCE's replacement; then
      // PRINCE's explanation cannot be a Why-Not explanation for it.
      for (size_t rank = 1; rank < ranking.size(); ++rank) {
        NodeId wni = ranking.at(rank).item;
        if (wni == pr->replacement) continue;
        graph::GraphOverlay o(rh.g);
        for (const graph::EdgeRef& e : pr->actions) {
          ASSERT_TRUE(o.RemoveEdge(e.src, e.dst, e.type).ok());
        }
        EXPECT_NE(recsys::Recommend(o, user, eopts.rec), wni);
        observed_mismatch = true;
        break;
      }
      if (observed_mismatch) break;
    }
  }
  EXPECT_TRUE(observed_mismatch)
      << "never found a PRINCE success with an alternative WNI — fixture "
         "too small?";
}

}  // namespace
}  // namespace emigre::explain
