// CSR push kernels vs legacy dense-reset engines: the perf claim behind the
// workspace layer (docs/performance.md), measured and ASSERTED.
//
// Two workloads on a medium synthetic Amazon graph:
//   static  — full pushes (forward from users, reverse toward items) at a
//             sweep of epsilons; the kernel replays the legacy schedule on
//             epoch-stamped sparse state instead of freshly zeroed arrays.
//             Informational: these pushes saturate the graph (touched ≈ n),
//             where both engines do the same O(n+work) and land at parity.
//   repair  — the candidate-TEST cycle the explain pipeline actually runs:
//             remove / re-add a user edge and repair the dynamic push state,
//             swept over epsilons. Legacy refine pays an O(n) seed scan plus
//             a dense queued array PER CANDIDATE; the sparse refine seeds
//             from the repaired row only, so where repairs are local it must
//             win outright.
//
// Both workloads also race the kFast engine (PushEngine::kFast): residual-
// priority forward scheduling and, on the reverse rows, ONE batched
// multi-target push producing all target columns in a shared traversal.
// kFast gives up bitwise identity, so its correctness oracle is the
// schedule-independent Eq. 3/4 validators plus run-to-run determinism.
//
// The guarantees are checked, not just reported — any violation exits 1:
//   1. Bitwise equality: kernel estimates equal the legacy engine's bit for
//      bit on every workload (same schedule, same float-op order). kFast
//      states instead pass the Eq. 3/4 invariant validators and are
//      deterministic across repeated runs.
//   2. Zero O(n) work after warm-up: no dense reset once the workspace
//      reached graph size, and the touched-node counter stays far below
//      begins * n.
//   3. The kernel path is strictly faster on the local-repair rows and their
//      aggregate (the per-candidate O(n) this layer deletes), never beyond
//      noise of legacy on push-bound rows, and swapping engines changes no
//      explanation output. The kFast path is strictly faster than legacy
//      where its schedule freedom actually pays on graphs this size: the
//      batched reverse row at the tightest epsilon (one shared traversal
//      for all target columns — the TEST loop's workload) and the
//      local-repair rows. On the remaining static rows kFast does 10-16%
//      fewer pushes (asserted below) but the rows are memory-bound: the
//      legacy dense engine is cache-resident at this graph size and the
//      priority frontier's constant factors exceed the work saved, so those
//      rows carry a bounded-overhead guard instead of a win claim (see
//      docs/performance.md for the full contract).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common.h"
#include "eval/scenario.h"
#include "explain/emigre.h"
#include "obs/metrics.h"
#include "ppr/dynamic.h"
#include "ppr/forward_push.h"
#include "ppr/kernels.h"
#include "ppr/options.h"
#include "ppr/reverse_push.h"
#include "ppr/workspace.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace emigre;

struct SweepRow {
  std::string label;
  double legacy_seconds = 0.0;
  double kernel_seconds = 0.0;
  double fast_seconds = 0.0;
  size_t work = 0;       ///< pushes (static rows) or repairs (repair row)
  size_t fast_work = 0;  ///< kFast pushes (column pushes on reverse rows)

  double Speedup() const {
    return kernel_seconds > 0.0 ? legacy_seconds / kernel_seconds : 1.0;
  }
  double FastSpeedup() const {
    return fast_seconds > 0.0 ? legacy_seconds / fast_seconds : 1.0;
  }
};

bool BitwiseEqual(const ppr::PushResult& a, const ppr::PushResult& b) {
  return a.estimate == b.estimate && a.residual == b.residual;
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::MakeBenchConfig();
  // A medium graph regardless of scale: the kernels' O(k)-vs-O(n) claim is
  // about per-push locality (touched nodes k well below |V|), which a
  // few-hundred-node smoke graph cannot exhibit. Generation stays fast;
  // only rep counts scale.
  if (config.scale == 0) {
    config.gen.num_users = 250;
    config.gen.num_items = 12000;
    config.gen.num_categories = 64;
  } else {
    config.gen.num_users = 400;
    config.gen.num_items = 24000;
    config.gen.num_categories = 96;
  }
  bench::PrintBenchHeader("CSR push kernels vs legacy dense engines", config);

  auto lite = bench::BuildBenchGraph(config);
  lite.status().CheckOK();
  const graph::HinGraph& g = lite->graph;
  const size_t n = g.NumNodes();

  // Sampled endpoints: the evaluation users as forward sources, a stride of
  // the item nodes as reverse targets.
  std::vector<graph::NodeId> sources = lite->eval_users;
  if (sources.size() > 8) sources.resize(8);
  std::vector<graph::NodeId> items = g.NodesOfType(lite->item_type);
  std::vector<graph::NodeId> targets;
  for (size_t i = 0; i < items.size() && targets.size() < 8;
       i += std::max<size_t>(1, items.size() / 8)) {
    targets.push_back(items[i]);
  }

  const std::vector<double> epsilons = {1e-4, 1e-5, 1e-6};
  const size_t reps = config.scale == 0 ? 2 : 6;
  // Interleaved best-of-N: each workload is raced `rounds` times per engine
  // and the minimum is kept, filtering scheduler noise out of the CI
  // assertion.
  const size_t rounds = 3;
  bool ok = true;

  ppr::PushWorkspace ws;
  ppr::PprOptions base_ppr;

  // Correctness pass (also warms the workspace up to graph size): every
  // swept (epsilon, endpoint) must match the legacy engine bit for bit.
  for (double eps : epsilons) {
    ppr::PprOptions opts = base_ppr;
    opts.epsilon = eps;
    for (graph::NodeId s : sources) {
      ppr::KernelResult kr = ppr::ForwardPushKernel(g, s, opts, ws);
      if (!BitwiseEqual(ppr::ExportDensePush(ws, n, kr.residual_mass),
                        ppr::ForwardPush(g, s, opts))) {
        std::fprintf(stderr,
                     "EQUIVALENCE VIOLATION: forward kernel != legacy "
                     "(source %u, eps %g)\n", s, eps);
        ok = false;
      }
    }
    for (graph::NodeId t : targets) {
      ppr::KernelResult kr = ppr::ReversePushKernel(g, t, opts, ws);
      if (!BitwiseEqual(ppr::ExportDensePush(ws, n, kr.residual_mass),
                        ppr::ReversePush(g, t, opts))) {
        std::fprintf(stderr,
                     "EQUIVALENCE VIOLATION: reverse kernel != legacy "
                     "(target %u, eps %g)\n", t, eps);
        ok = false;
      }
    }
  }

  // kFast correctness: no bitwise claim against the other engines — the
  // schedule-independent Eq. 3/4 validators are the oracle — plus
  // determinism (two runs of the same push export identical states).
  for (double eps : epsilons) {
    ppr::PprOptions opts = base_ppr;
    opts.epsilon = eps;
    for (graph::NodeId s : sources) {
      ppr::KernelResult kr = ppr::ForwardPushKernelFast(g, s, opts, ws);
      ppr::PushResult state = ppr::ExportDensePush(ws, n, kr.residual_mass);
      Status st = check::ValidateForwardPushInvariant(g, s, state, opts);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: kFast forward push (source %u, "
                     "eps %g): %s\n", s, eps, st.ToString().c_str());
        ok = false;
      }
      ppr::KernelResult kr2 = ppr::ForwardPushKernelFast(g, s, opts, ws);
      if (!BitwiseEqual(state, ppr::ExportDensePush(ws, n,
                                                    kr2.residual_mass))) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: kFast forward push not "
                     "reproducible (source %u, eps %g)\n", s, eps);
        ok = false;
      }
    }
    for (graph::NodeId t : targets) {
      ppr::KernelResult kr = ppr::ReversePushKernelFast(g, t, opts, ws);
      Status st = check::ValidateReversePushInvariant(
          g, t, ppr::ExportDensePush(ws, n, kr.residual_mass), opts);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: kFast reverse push (target %u, "
                     "eps %g): %s\n", t, eps, st.ToString().c_str());
        ok = false;
      }
    }
    // Batched columns: every column must independently satisfy Eq. 4, and
    // the batch must be deterministic across runs.
    std::vector<ppr::PushResult> dense_a, dense_b;
    ppr::ReversePushBatchKernel(g, targets, opts, ws, nullptr, &dense_a);
    ppr::ReversePushBatchKernel(g, targets, opts, ws, nullptr, &dense_b);
    for (size_t c = 0; c < targets.size(); ++c) {
      Status st = check::ValidateReversePushInvariant(g, targets[c],
                                                      dense_a[c], opts);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: batched reverse column (target "
                     "%u, eps %g): %s\n", targets[c], eps,
                     st.ToString().c_str());
        ok = false;
      }
      if (!BitwiseEqual(dense_a[c], dense_b[c])) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: batched reverse column not "
                     "reproducible (target %u, eps %g)\n", targets[c], eps);
        ok = false;
      }
    }
  }

  // Timed sweeps. The workspace is warm: from here on a single dense reset
  // or a touched count anywhere near begins * n is a regression.
  const size_t resets_after_warmup = ws.stats().dense_resets;
  const size_t begins_before = ws.stats().begins;
  const size_t touched_before = ws.stats().touched_total;

  std::vector<SweepRow> rows;
  double legacy_total = 0.0, kernel_total = 0.0, fast_total = 0.0;
  for (double eps : epsilons) {
    ppr::PprOptions opts = base_ppr;
    opts.epsilon = eps;

    SweepRow fwd{StrFormat("forward eps=%g", eps)};
    SweepRow rev{StrFormat("reverse eps=%g", eps)};
    WallTimer timer;
    for (size_t round = 0; round < rounds; ++round) {
      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        for (graph::NodeId s : sources) ppr::ForwardPush(g, s, opts);
      }
      fwd.legacy_seconds = round == 0
                               ? timer.ElapsedSeconds()
                               : std::min(fwd.legacy_seconds,
                                          timer.ElapsedSeconds());
      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        for (graph::NodeId s : sources) {
          size_t pushes = ppr::ForwardPushKernel(g, s, opts, ws).pushes;
          if (round == 0) fwd.work += pushes;
        }
      }
      fwd.kernel_seconds = round == 0
                               ? timer.ElapsedSeconds()
                               : std::min(fwd.kernel_seconds,
                                          timer.ElapsedSeconds());
      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        for (graph::NodeId s : sources) {
          size_t pushes = ppr::ForwardPushKernelFast(g, s, opts, ws).pushes;
          if (round == 0) fwd.fast_work += pushes;
        }
      }
      fwd.fast_seconds = round == 0
                             ? timer.ElapsedSeconds()
                             : std::min(fwd.fast_seconds,
                                        timer.ElapsedSeconds());

      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        for (graph::NodeId t : targets) ppr::ReversePush(g, t, opts);
      }
      rev.legacy_seconds = round == 0
                               ? timer.ElapsedSeconds()
                               : std::min(rev.legacy_seconds,
                                          timer.ElapsedSeconds());
      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        for (graph::NodeId t : targets) {
          size_t pushes = ppr::ReversePushKernel(g, t, opts, ws).pushes;
          if (round == 0) rev.work += pushes;
        }
      }
      rev.kernel_seconds = round == 0
                               ? timer.ElapsedSeconds()
                               : std::min(rev.kernel_seconds,
                                          timer.ElapsedSeconds());
      // The kFast reverse leg produces the same per-target columns as the
      // 8 independent pushes above, but through one batched traversal —
      // the amortization the TEST pipeline's repeated PPR(·, t) fetches
      // exploit via ReversePushCache::GetBatch.
      timer.Reset();
      for (size_t r = 0; r < reps; ++r) {
        ppr::BatchPushStats stats;
        ppr::ReversePushBatchKernel(g, targets, opts, ws, &stats);
        if (round == 0) rev.fast_work += stats.column_pushes;
      }
      rev.fast_seconds = round == 0
                             ? timer.ElapsedSeconds()
                             : std::min(rev.fast_seconds,
                                        timer.ElapsedSeconds());
    }

    // kFast perf contract on the static rows. The win claim lives where
    // the schedule freedom pays at this graph size: the batched reverse
    // row at the tightest swept epsilon, where ONE shared traversal
    // produces every target column and the push volume dwarfs the
    // per-batch setup — strictly faster than the 8 legacy pushes it
    // replaces. The other static rows are memory-bound (the legacy dense
    // engine is cache-resident here), so they carry a bounded-overhead
    // guard plus a work assertion: the priority schedule must still do
    // strictly fewer pushes than FIFO wherever the row is push-heavy
    // enough for the order to matter (the scheduling claim, independent
    // of constant factors).
    const bool tightest = eps == epsilons.back();
    if (tightest && rev.fast_seconds >= rev.legacy_seconds) {
      std::fprintf(stderr,
                   "PERF VIOLATION: kFast batched reverse (%.4fs) not "
                   "faster than legacy (%.4fs) at eps %g\n",
                   rev.fast_seconds, rev.legacy_seconds, eps);
      ok = false;
    }
    if (fwd.fast_seconds > fwd.legacy_seconds * 2.0) {
      std::fprintf(stderr,
                   "PERF VIOLATION: kFast forward overhead beyond bound "
                   "(%.4fs vs legacy %.4fs at eps %g)\n",
                   fwd.fast_seconds, fwd.legacy_seconds, eps);
      ok = false;
    }
    if (rev.fast_seconds > rev.legacy_seconds * 2.0) {
      std::fprintf(stderr,
                   "PERF VIOLATION: kFast batched reverse overhead beyond "
                   "bound (%.4fs vs legacy %.4fs at eps %g)\n",
                   rev.fast_seconds, rev.legacy_seconds, eps);
      ok = false;
    }
    if (eps <= 1e-5 && fwd.fast_work >= fwd.work) {
      std::fprintf(stderr,
                   "WORK VIOLATION: kFast forward pushes (%zu) not below "
                   "FIFO kernel pushes (%zu) at eps %g\n",
                   fwd.fast_work, fwd.work, eps);
      ok = false;
    }
    if (eps <= 1e-5 && rev.fast_work >= rev.work) {
      std::fprintf(stderr,
                   "WORK VIOLATION: kFast batched column pushes (%zu) not "
                   "below per-target kernel pushes (%zu) at eps %g\n",
                   rev.fast_work, rev.work, eps);
      ok = false;
    }

    legacy_total += fwd.legacy_seconds + rev.legacy_seconds;
    kernel_total += fwd.kernel_seconds + rev.kernel_seconds;
    fast_total += fwd.fast_seconds + rev.fast_seconds;
    rows.push_back(fwd);
    rows.push_back(rev);
  }

  // The candidate-TEST repair cycle, on separate mutable copies so both
  // engines see identical adjacency orders (HinGraph re-adds append).
  //
  // Swept over epsilons because the engines differ in the O(n) part, not
  // the push part. At moderate epsilon a repair is LOCAL — a handful of
  // pushes — so legacy refine's O(n) seed scan and per-repair dense
  // `queued` allocation dominate its cost, and the sparse refine (seeded
  // from the repaired row on the reusable ring) must win outright. Those
  // rows carry the strict perf assertion; this is exactly the per-candidate
  // O(n) the kernel layer deletes. At the tight eval epsilon the repair is
  // re-push-bound (both engines execute the bitwise-identical schedule), so
  // that row is context only, guarded against gross regression.
  double repair_legacy_asserted = 0.0, repair_kernel_asserted = 0.0;
  {
    // Rows 1e-4/1e-5 are the local-repair regime (strict assertion); tighter
    // rows are push-bound on graphs this size and only noise-guarded.
    std::vector<double> repair_eps = {1e-4, 1e-5, 1e-6};
    if (std::find(repair_eps.begin(), repair_eps.end(), config.epsilon) ==
        repair_eps.end()) {
      repair_eps.push_back(config.epsilon);
    }
    const size_t num_dyn_sources = std::min<size_t>(3, sources.size());
    for (double eps : repair_eps) {
      const bool asserted = eps >= 1e-5;
      const size_t repair_reps = config.scale == 0 ? (asserted ? 12 : 1)
                                                   : (asserted ? 24 : 2);
      ppr::PprOptions opts = base_ppr;
      opts.epsilon = eps;

      SweepRow rep{StrFormat("repair eps=%g", eps)};
      std::vector<std::vector<double>> final_legacy, final_kernel;
      for (size_t round = 0; round < rounds; ++round) {
        for (int engine = 0; engine < 3; ++engine) {
          bool kernel = engine == 1;
          bool fast = engine == 2;
          ppr::PprOptions dyn_opts = opts;
          if (fast) dyn_opts.engine = ppr::PushEngine::kFast;
          graph::HinGraph mg = g;
          WallTimer timer;
          double seconds = 0.0;
          for (size_t si = 0; si < num_dyn_sources; ++si) {
            graph::NodeId u = sources[si];
            // Snapshot the out-edges to cycle; each remove is paired with a
            // re-add, so the graph returns to (an append-permuted copy of)
            // the base row after every cycle.
            auto row_view = mg.OutEdges(u);
            std::vector<graph::Edge> row(row_view.begin(), row_view.end());
            if (row.size() > 8) row.resize(8);
            timer.Reset();
            ppr::DynamicForwardPush<graph::HinGraph> dyn(
                mg, u, dyn_opts, engine > 0 ? &ws : nullptr);
            for (size_t r = 0; r < repair_reps; ++r) {
              for (const graph::Edge& e : row) {
                dyn.BeforeOutEdgeChange(u);
                mg.RemoveEdge(u, e.node, e.type).CheckOK();
                dyn.AfterOutEdgeChange(u);
                if (kernel && round == 0) rep.work += 1;
                dyn.BeforeOutEdgeChange(u);
                mg.AddEdge(u, e.node, e.type, e.weight).CheckOK();
                dyn.AfterOutEdgeChange(u);
                if (kernel && round == 0) rep.work += 1;
              }
            }
            seconds += timer.ElapsedSeconds();
            if (round == 0) {
              if (fast) {
                // kFast repairs carry no bitwise claim; the Eq. 3 validator
                // is the oracle on the repaired-to-convergence state.
                Status st = check::ValidateForwardPushInvariant(
                    mg, u, dyn.State(), dyn_opts);
                if (!st.ok()) {
                  std::fprintf(stderr,
                               "INVARIANT VIOLATION: kFast repair state "
                               "(source %u, eps %g): %s\n", u, eps,
                               st.ToString().c_str());
                  ok = false;
                }
              } else {
                (kernel ? final_kernel : final_legacy)
                    .push_back(dyn.Estimates());
              }
            }
          }
          double& best = fast ? rep.fast_seconds
                              : kernel ? rep.kernel_seconds
                                       : rep.legacy_seconds;
          best = round == 0 ? seconds : std::min(best, seconds);
        }
      }
      if (final_legacy != final_kernel) {
        std::fprintf(stderr,
                     "EQUIVALENCE VIOLATION: dynamic repair states diverged "
                     "between engines (eps %g)\n", eps);
        ok = false;
      }
      if (asserted) {
        repair_legacy_asserted += rep.legacy_seconds;
        repair_kernel_asserted += rep.kernel_seconds;
        if (rep.kernel_seconds >= rep.legacy_seconds) {
          std::fprintf(stderr,
                       "PERF VIOLATION: sparse repair (%.4fs) not faster "
                       "than legacy O(n) refine (%.4fs) at eps %g\n",
                       rep.kernel_seconds, rep.legacy_seconds, eps);
          ok = false;
        }
        if (rep.fast_seconds >= rep.legacy_seconds) {
          // Same O(row + pushes)-vs-O(n) claim as the kernel engine: the
          // priority frontier must not give the per-candidate win back.
          std::fprintf(stderr,
                       "PERF VIOLATION: kFast repair (%.4fs) not faster "
                       "than legacy O(n) refine (%.4fs) at eps %g\n",
                       rep.fast_seconds, rep.legacy_seconds, eps);
          ok = false;
        }
      } else {
        if (rep.kernel_seconds > rep.legacy_seconds * 1.25) {
          // Push-bound row: identical schedules, so anything beyond noise
          // is kernel bookkeeping overhead creeping into the per-edge path.
          std::fprintf(stderr,
                       "PERF VIOLATION: push-bound repair regressed beyond "
                       "noise (kernel %.4fs vs legacy %.4fs at eps %g)\n",
                       rep.kernel_seconds, rep.legacy_seconds, eps);
          ok = false;
        }
        if (rep.fast_seconds > rep.legacy_seconds * 1.5) {
          // kFast re-push cascades pay the priority frontier's per-edge
          // constants where repairs are re-push-bound; bounded, slightly
          // wider than the kernel's noise guard.
          std::fprintf(stderr,
                       "PERF VIOLATION: push-bound repair regressed beyond "
                       "bound (kFast %.4fs vs legacy %.4fs at eps %g)\n",
                       rep.fast_seconds, rep.legacy_seconds, eps);
          ok = false;
        }
      }
      legacy_total += rep.legacy_seconds;
      kernel_total += rep.kernel_seconds;
      fast_total += rep.fast_seconds;
      rows.push_back(rep);
    }
  }

  if (ws.stats().dense_resets != resets_after_warmup) {
    std::fprintf(stderr,
                 "WORKSPACE VIOLATION: %zu dense reset(s) after warm-up\n",
                 ws.stats().dense_resets - resets_after_warmup);
    ok = false;
  }
  // Touched-node accounting: the sparse reset must have paid O(k) per push,
  // with k well below n on this graph.
  const size_t begins = ws.stats().begins - begins_before;
  const size_t touched = ws.stats().touched_total - touched_before;
  if (touched >= begins * n) {
    std::fprintf(stderr,
                 "WORKSPACE VIOLATION: touched %zu nodes over %zu pushes — "
                 "no better than %zu-node dense resets\n",
                 touched, begins, n);
    ok = false;
  }

  TextTable table(
      {"workload", "legacy", "kernel", "fast", "speedup", "fast-spd", "work",
       "fast-work"});
  for (size_t c = 1; c < 8; ++c) table.SetAlign(c, Align::kRight);
  for (const SweepRow& row : rows) {
    std::string tag = row.label;
    std::replace(tag.begin(), tag.end(), ' ', '.');
    obs::Registry::Global()
        .GetGauge("bench.ppr_kernels." + tag + ".legacy_seconds")
        .Set(row.legacy_seconds);
    obs::Registry::Global()
        .GetGauge("bench.ppr_kernels." + tag + ".kernel_seconds")
        .Set(row.kernel_seconds);
    obs::Registry::Global()
        .GetGauge("bench.ppr_kernels." + tag + ".speedup")
        .Set(row.Speedup());
    obs::Registry::Global()
        .GetGauge("bench.ppr_kernels." + tag + ".fast_seconds")
        .Set(row.fast_seconds);
    obs::Registry::Global()
        .GetGauge("bench.ppr_kernels." + tag + ".fast_speedup")
        .Set(row.FastSpeedup());
    table.AddRow({row.label, FormatDuration(row.legacy_seconds),
                  FormatDuration(row.kernel_seconds),
                  FormatDuration(row.fast_seconds),
                  FormatDouble(row.Speedup(), 2) + "x",
                  FormatDouble(row.FastSpeedup(), 2) + "x",
                  std::to_string(row.work), std::to_string(row.fast_work)});
  }
  std::printf("%s\n", table.ToString().c_str());

  double overall = kernel_total > 0.0 ? legacy_total / kernel_total : 1.0;
  double fast_overall = fast_total > 0.0 ? legacy_total / fast_total : 1.0;
  double repair_speedup = repair_kernel_asserted > 0.0
                              ? repair_legacy_asserted / repair_kernel_asserted
                              : 1.0;
  obs::Registry::Global()
      .GetGauge("bench.ppr_kernels.overall_speedup")
      .Set(overall);
  obs::Registry::Global()
      .GetGauge("bench.ppr_kernels.fast_overall_speedup")
      .Set(fast_overall);
  obs::Registry::Global()
      .GetGauge("bench.ppr_kernels.repair_speedup")
      .Set(repair_speedup);
  std::printf("overall: legacy %s, kernel %s (%.2fx), fast %s (%.2fx); "
              "candidate-TEST repair %.2fx; %zu nodes touched across %zu "
              "workspace pushes on a %zu-node graph\n",
              FormatDuration(legacy_total).c_str(),
              FormatDuration(kernel_total).c_str(), overall,
              FormatDuration(fast_total).c_str(), fast_overall,
              repair_speedup, touched, begins, n);
  // The asserted aggregate is the candidate-TEST repair workload (the rows
  // where the engines differ by an O(n) term); the all-workload total above
  // is informational — the push-saturated static rows are schedule-identical
  // by construction and land at parity.
  if (repair_kernel_asserted >= repair_legacy_asserted) {
    std::fprintf(stderr,
                 "PERF VIOLATION: kernel repair aggregate (%.4fs) not faster "
                 "than legacy (%.4fs)\n",
                 repair_kernel_asserted, repair_legacy_asserted);
    ok = false;
  }

  // Engine swap must be invisible in explanation outputs: same candidates
  // accepted, same edges, same failure reasons.
  auto scenarios = eval::GenerateScenarios(
      g, lite->eval_users, bench::MakeEmigreOptions(config, *lite),
      config.top_k, config.max_per_user);
  scenarios.status().CheckOK();
  explain::EmigreOptions legacy_opts = bench::MakeEmigreOptions(config, *lite);
  legacy_opts.rec.ppr.engine = ppr::PushEngine::kLegacy;
  legacy_opts.deadline_seconds = 0.0;  // deterministic: no wall-clock cutoffs
  // With the deadline off the search needs a deterministic bound instead —
  // identical for both engines, so a capped attempt fails identically too.
  // The exact tester keeps the comparison bitwise: every TEST re-runs the
  // recommender on the same pristine-ordered graph state under either
  // engine. (The dynamic tester is ε-accurate, not bitwise, across engines:
  // its legacy scratch graph re-appends reverted edges, permuting adjacency
  // — and thus float summation — order, while the overlay restores base
  // order exactly, so near-ties may resolve differently.)
  legacy_opts.max_tests = 60;
  legacy_opts.max_add_candidates = 32;
  legacy_opts.tester = explain::TesterKind::kExact;
  explain::EmigreOptions kernel_opts = legacy_opts;
  kernel_opts.rec.ppr.engine = ppr::PushEngine::kKernel;
  // kFast reorders float ops inside the ε-approximate candidate derivation,
  // but the exact tester's verdicts (power iteration on the same graph
  // state) and the deterministic candidate ordering keep the explanation
  // outputs engine-invariant; asserted here across all three engines.
  explain::EmigreOptions fast_opts = legacy_opts;
  fast_opts.rec.ppr.engine = ppr::PushEngine::kFast;
  explain::Emigre legacy_engine(g, legacy_opts);
  explain::Emigre kernel_engine(g, kernel_opts);
  explain::Emigre fast_engine(g, fast_opts);
  size_t compared = 0;
  for (const eval::Scenario& sc : scenarios.value()) {
    if (compared >= (config.scale == 0 ? 4u : 8u)) break;
    ++compared;
    explain::WhyNotQuestion q{sc.user, sc.wni};
    for (explain::Mode mode : {explain::Mode::kRemove, explain::Mode::kAdd}) {
      auto a = legacy_engine.Explain(q, mode, explain::Heuristic::kExhaustive);
      auto b = kernel_engine.Explain(q, mode, explain::Heuristic::kExhaustive);
      auto c = fast_engine.Explain(q, mode, explain::Heuristic::kExhaustive);
      auto differs = [&](const Result<explain::Explanation>& x) {
        return a.ok() != x.ok() ||
               (a.ok() && (a->found != x->found || a->edges != x->edges ||
                           a->new_rec != x->new_rec ||
                           a->failure != x->failure));
      };
      if (differs(b) || differs(c)) {
        std::fprintf(stderr,
                     "EXPLANATION VIOLATION: engines disagree (user %u, "
                     "wni %u, mode %d)\n", sc.user, sc.wni,
                     static_cast<int>(mode));
        ok = false;
      }
    }
  }
  std::printf("explanation equality: legacy == kernel == fast on %zu "
              "scenarios x 2 modes\n", compared);
  obs::Registry::Global()
      .GetGauge("bench.ppr_kernels.scenarios_compared")
      .Set(static_cast<double>(compared));

  bench::WriteBenchMetrics("ppr_kernels");
  if (!ok) return 1;
  std::printf("all kernel invariants held\n");
  return 0;
}
