// Parallel TEST verification: wall-clock of the batched candidate fan-out
// (explain/parallel_tester.h) at 1 / 2 / N worker threads, holding
// everything else fixed — runner scenario workers pinned to 1 so the only
// parallelism measured is candidate-level.
//
// Expected shape: add_ex (Exhaustive Add, large verified batches of
// single-edge candidates) scales close to linearly until the per-TEST cost
// stops dominating; remove_brute (subset enumeration in 128-candidate
// chunks) scales too but amortizes less per batch. Both must return
// byte-identical explanations at every thread count — the determinism
// contract (docs/parallelism.md) is asserted here, not just in the tests.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "obs/metrics.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct ThreadRun {
  size_t threads = 1;
  double seconds = 0.0;
  size_t successes = 0;
  size_t total_size = 0;
};

}  // namespace

int main() {
  using namespace emigre;
  bench::BenchConfig config = bench::MakeBenchConfig();
  config.lite.sample_users = config.scale == 0 ? 4 : 10;
  config.max_per_user = 2;
  config.top_k = 5;
  // The fan-out pays off when each TEST is expensive: use the exact tester
  // (full recommender re-run per candidate). Budgets must be identical
  // logical work at every thread count, so the wall-clock deadline is off
  // and the deterministic TEST cap bounds the search instead — a deadline
  // would stop faster runs at a different candidate than slower ones.
  config.method_deadline_seconds = 0.0;
  config.oracle_deadline_seconds = 0.0;
  const size_t kOracleTestCap = 1000;

  bench::PrintBenchHeader("Parallel TEST verification — thread scaling",
                          config);

  auto lite = bench::BuildBenchGraph(config);
  lite.status().CheckOK();

  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);

  std::vector<eval::MethodSpec> paper = eval::PaperMethods();
  std::vector<eval::MethodSpec> methods = {
      *eval::FindMethod(paper, "add_ex"),
      *eval::FindMethod(paper, "remove_brute"),
  };

  eval::RunnerOptions run_opts;
  run_opts.num_threads = 1;  // isolate candidate-level parallelism

  TextTable table(
      {"method", "threads", "wall time", "speedup", "success", "avg size"});
  for (size_t c = 1; c < 6; ++c) table.SetAlign(c, Align::kRight);

  for (const eval::MethodSpec& method : methods) {
    std::vector<eval::MethodSpec> one = {method};
    std::vector<ThreadRun> runs;
    std::vector<std::vector<eval::ScenarioRecord>> records_by_run;
    for (size_t threads : thread_counts) {
      explain::EmigreOptions opts = bench::MakeEmigreOptions(config, *lite);
      opts.tester = explain::TesterKind::kExact;
      opts.test_threads = threads;
      if (method.heuristic == explain::Heuristic::kBruteForce) {
        opts.max_tests = kOracleTestCap;
      }
      auto scenarios = eval::GenerateScenarios(
          lite->graph, lite->eval_users, opts, config.top_k,
          config.max_per_user);
      scenarios.status().CheckOK();

      WallTimer timer;
      auto result = eval::RunExperiment(lite->graph, scenarios.value(), one,
                                        opts, run_opts);
      result.status().CheckOK();
      double seconds = timer.ElapsedSeconds();

      ThreadRun run;
      run.threads = threads;
      run.seconds = seconds;
      for (const auto& r : result->records) {
        if (r.correct) {
          ++run.successes;
          run.total_size += r.explanation_size;
        }
      }
      runs.push_back(run);
      records_by_run.push_back(result->records);

      obs::Registry::Global()
          .GetGauge("bench.parallel_tester." + method.name + ".t" +
                    std::to_string(threads) + ".seconds")
          .Set(seconds);
    }

    // Determinism across thread counts: every run must produce the same
    // per-scenario outcome (correctness, size, failure) as the serial run.
    bool identical = true;
    for (size_t i = 1; i < records_by_run.size(); ++i) {
      const auto& a = records_by_run[0];
      const auto& b = records_by_run[i];
      if (a.size() != b.size()) identical = false;
      for (size_t k = 0; identical && k < a.size(); ++k) {
        identical = a[k].correct == b[k].correct &&
                    a[k].returned == b[k].returned &&
                    a[k].explanation_size == b[k].explanation_size &&
                    a[k].failure == b[k].failure;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %zu threads diverged "
                     "from serial\n",
                     method.name.c_str(), runs[i].threads);
        return 1;
      }
    }

    for (const ThreadRun& run : runs) {
      double speedup = runs.front().seconds > 0.0
                           ? runs.front().seconds / run.seconds
                           : 1.0;
      obs::Registry::Global()
          .GetGauge("bench.parallel_tester." + method.name + ".t" +
                    std::to_string(run.threads) + ".speedup")
          .Set(speedup);
      table.AddRow({method.name, std::to_string(run.threads),
                    FormatDuration(run.seconds),
                    FormatDouble(speedup, 2) + "x",
                    std::to_string(run.successes),
                    run.successes == 0
                        ? "-"
                        : FormatDouble(static_cast<double>(run.total_size) /
                                           static_cast<double>(run.successes),
                                       2)});
    }
    table.AddSeparator();
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Runner scenario workers pinned to 1; all parallelism above is the "
      "candidate-level TEST fan-out. Identical per-scenario outcomes at "
      "every thread count were asserted.\n");
  std::printf(
      "Hardware concurrency: %zu. Thread counts beyond it oversubscribe a "
      "single core and measure fan-out overhead, not speedup.\n", hardware);
  bench::WriteBenchMetrics("parallel_tester");
  return 0;
}
