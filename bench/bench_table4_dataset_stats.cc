// Reproduces paper Table 4: node-degree statistics per node type of the
// evaluation graph.
//
// The paper's graph is an extraction of the (withdrawn) Amazon Customer
// Review dataset: 11831 nodes / 40552 edges with the degree profile below.
// Our synthetic substitute regenerates the same schema and a comparable
// profile (heavy-tailed categories, low-degree reviews/items, users with
// tens of actions); absolute counts scale with EMIGRE_BENCH_SCALE.

#include <cstdio>

#include "common.h"
#include "graph/stats.h"
#include "util/table.h"

int main() {
  using namespace emigre;
  bench::BenchConfig config = bench::MakeBenchConfig();
  bench::PrintBenchHeader(
      "Table 4 — Node degree statistics per node type (paper §6.1)", config);

  auto lite = bench::BuildBenchGraph(config);
  lite.status().CheckOK();
  std::printf("Synthetic evaluation graph: %zu nodes, %zu edges\n\n",
              lite->graph.NumNodes(), lite->graph.NumEdges());
  std::printf("%s\n",
              graph::FormatDegreeStats(
                  graph::ComputeDegreeStats(lite->graph))
                  .c_str());

  TextTable paper({"Node Type", "# of Nodes", "Average Degree",
                   "Degree STD"});
  for (size_t c = 1; c <= 3; ++c) paper.SetAlign(c, Align::kRight);
  paper.AddRow({"Reviews", "2334", "2.28", "0.7"});
  paper.AddRow({"Categories", "32", "366.8", "291.9"});
  paper.AddRow({"Items", "7459", "5.4", "2.4"});
  paper.AddRow({"Users", "120", "22.1", "2.7"});
  std::printf("Paper-reported values (11831 nodes, 40552 edges):\n%s\n",
              paper.ToString().c_str());
  std::printf("Shape to match: categories few and hub-like (highest mean "
              "degree, huge spread); reviews lowest degree; items low; "
              "users in the tens.\n");
  bench::WriteBenchMetrics("table4_dataset_stats");
  return 0;
}
