// Graph I/O paths, raced and ASSERTED: CSV parsing vs the emigre.bin.v1
// columnar dataset vs the emigre.csr.v1 mmap snapshot (docs/data_format.md).
//
// The workload is the medium synthetic-Amazon preset — the size the
// ≥20x floor in bench/baselines/perfgate.json is defined on — regardless of
// EMIGRE_BENCH_SCALE (the scale only picks the repetition count). Four
// timed phases, best-of-k wall time each:
//
//   csv_parse     — LoadDatasetCsv: the text path every cold start used to
//                   pay (per-field parse, per-row validation).
//   bin_load      — LoadDatasetBin: same relations from typed little-endian
//                   columns, CRC-verified.
//   csv_graph     — LoadDatasetCsv + BuildAmazonLite: full cold start from
//                   text to a queryable HinGraph (informational).
//   snapshot_load — CsrSnapshotView::Load: mmap the prebuilt CSR image and
//                   serve queries off the page cache.
//
// Guarantees checked here (any violation exits 1):
//   1. The mmap'd snapshot serves the same graph: node/edge counts and the
//      type vocabularies match the HinGraph the CSV route builds.
//   2. snapshot_load is >= kSnapshotVsCsvFloor x faster than csv_parse —
//      the headline claim of the binary format layer. The same floor is
//      enforced against the emitted metrics by the perfgate config, so a
//      stale baseline cannot hide a regression.
//   3. Resident-set growth of the snapshot load stays within 2x the
//      snapshot file size (plus a fixed slack absorbing allocator noise at
//      this scale) — the mmap path must not degenerate into a full heap
//      copy. This is the medium-scale proxy for the 10M-node band's
//      "peak RSS <= 2x snapshot size" acceptance bar.
//
// Peak RSS per phase is sampled from /proc/self/status (VmRSS before/after,
// VmHWM at exit); on non-Linux builds the RSS gauges read 0 and the RSS
// assertion is skipped.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "data/amazon_lite.h"
#include "data/bin_io.h"
#include "data/csv_io.h"
#include "data/schema.h"
#include "data/synthetic_amazon.h"
#include "graph/csr_snapshot.h"
#include "graph/hin_graph.h"
#include "obs/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace emigre;

constexpr double kSnapshotVsCsvFloor = 20.0;

/// Reads a "VmRSS:  1234 kB"-style line from /proc/self/status; 0 when the
/// key (or the proc filesystem) is unavailable.
size_t ReadProcStatusBytes(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const size_t key_len = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, key_len, key) == 0) {
      return static_cast<size_t>(
                 std::strtoull(line.c_str() + key_len + 1, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

size_t FileBytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

size_t DirBytes(const std::string& dir) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

struct PhaseResult {
  double best_seconds = 0.0;
  size_t rss_delta_bytes = 0;  ///< VmRSS growth across the first iteration
};

/// Runs `body` `iters` times; keeps the best wall time and the first
/// iteration's resident-set growth (later iterations recycle allocator
/// pools and tell nothing about the phase's own footprint).
template <typename Fn>
PhaseResult TimePhase(int iters, Fn&& body) {
  PhaseResult out;
  for (int i = 0; i < iters; ++i) {
    size_t rss_before = ReadProcStatusBytes("VmRSS:");
    WallTimer timer;
    size_t live_bytes = body();  // returns bytes held at peak, unused
    (void)live_bytes;
    double elapsed = timer.ElapsedSeconds();
    size_t rss_after = ReadProcStatusBytes("VmRSS:");
    if (i == 0 && rss_after > rss_before) {
      out.rss_delta_bytes = rss_after - rss_before;
    }
    if (i == 0 || elapsed < out.best_seconds) out.best_seconds = elapsed;
  }
  return out;
}

void SetGauge(const std::string& name, double value) {
  obs::Registry::Global().GetGauge("bench.graph_io." + name).Set(value);
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::MakeBenchConfig();
  bench::PrintBenchHeader(
      "graph I/O: CSV parse vs emigre.bin.v1 vs mmap CSR snapshot", config);
  const int iters = config.scale == 0 ? 3 : 6;

  // --- Workspace: generate the medium dataset once in all three encodings.
  const std::string work = "/tmp/emigre_bench_graph_io";
  std::error_code ec;
  std::filesystem::remove_all(work, ec);
  std::filesystem::create_directories(work + "/csv");
  auto opts = data::SyntheticAmazonPreset("medium");
  opts.status().CheckOK();
  auto ds = data::GenerateSyntheticAmazon(opts.value());
  ds.status().CheckOK();
  data::SaveDatasetCsv(ds.value(), work + "/csv").CheckOK();
  data::SaveDatasetBin(ds.value(), work + "/ds.bin").CheckOK();

  // The graph the snapshot must reproduce: the full serving graph (no
  // neighborhood pruning), similarity links included.
  data::AmazonLiteOptions lite_opts;
  lite_opts.neighborhood_hops = 0;
  auto lite = data::BuildAmazonLite(ds.value(), lite_opts);
  lite.status().CheckOK();
  const graph::HinGraph& built = lite->graph;
  graph::WriteGraphSnapshot(built, work + "/graph.csr").CheckOK();

  const size_t csv_bytes = DirBytes(work + "/csv");
  const size_t bin_bytes = FileBytes(work + "/ds.bin");
  const size_t snapshot_bytes = FileBytes(work + "/graph.csr");
  std::printf("dataset: %zu users, %zu items, %zu ratings, %zu reviews\n",
              ds->users.size(), ds->items.size(), ds->ratings.size(),
              ds->reviews.size());
  std::printf("graph:   %zu nodes, %zu edges\n", built.NumNodes(),
              built.NumEdges());
  std::printf("sizes:   csv %zu B, bin %zu B, snapshot %zu B\n\n", csv_bytes,
              bin_bytes, snapshot_bytes);

  bool ok = true;

  // --- Timed phases (best of `iters`).
  PhaseResult csv_parse = TimePhase(iters, [&] {
    auto loaded = data::LoadDatasetCsv(work + "/csv");
    loaded.status().CheckOK();
    return loaded->ratings.size();
  });
  PhaseResult bin_load = TimePhase(iters, [&] {
    auto loaded = data::LoadDatasetBin(work + "/ds.bin");
    loaded.status().CheckOK();
    return loaded->ratings.size();
  });
  // Informational and by far the slowest phase (BuildAmazonLite dominates);
  // one iteration is plenty for a ballpark.
  PhaseResult csv_graph = TimePhase(1, [&] {
    auto loaded = data::LoadDatasetCsv(work + "/csv");
    loaded.status().CheckOK();
    auto g = data::BuildAmazonLite(loaded.value(), lite_opts);
    g.status().CheckOK();
    return g->graph.NumEdges();
  });
  PhaseResult snapshot_load = TimePhase(iters, [&] {
    auto view = graph::CsrSnapshotView::Load(work + "/graph.csr");
    view.status().CheckOK();
    return view->NumEdges();
  });
  // Full page-in sweep: what a query-saturating workload would fault in.
  PhaseResult snapshot_touch = TimePhase(iters, [&] {
    auto view = graph::CsrSnapshotView::Load(work + "/graph.csr");
    view.status().CheckOK();
    double acc = 0.0;
    const uint64_t n = view->NumNodes();
    for (uint64_t u = 0; u < n; ++u) {
      view->ForEachOutEdge(static_cast<graph::NodeId>(u),
                           [&](graph::NodeId, graph::EdgeTypeId, double w) {
                             acc += w;
                           });
    }
    return static_cast<size_t>(acc);
  });

  // --- Guarantee 1: same graph behind the mmap.
  {
    auto view = graph::CsrSnapshotView::Load(work + "/graph.csr");
    view.status().CheckOK();
    if (view->NumNodes() != built.NumNodes() ||
        view->NumEdges() != built.NumEdges()) {
      std::fprintf(stderr,
                   "GRAPH VIOLATION: snapshot %zu nodes / %zu edges vs "
                   "built %zu / %zu\n",
                   view->NumNodes(), view->NumEdges(), built.NumNodes(),
                   built.NumEdges());
      ok = false;
    }
    for (graph::NodeTypeId t = 0; t < built.NumNodeTypes(); ++t) {
      if (view->NodeTypeName(t) != built.NodeTypeName(t)) {
        std::fprintf(stderr, "GRAPH VIOLATION: node type %u name mismatch\n",
                     t);
        ok = false;
      }
    }
  }

  const double speedup = snapshot_load.best_seconds > 0.0
                             ? csv_parse.best_seconds /
                                   snapshot_load.best_seconds
                             : 0.0;
  const double bin_speedup =
      bin_load.best_seconds > 0.0
          ? csv_parse.best_seconds / bin_load.best_seconds
          : 0.0;

  std::printf("csv_parse:     %8.2f ms  (rss +%zu KiB)\n",
              csv_parse.best_seconds * 1e3, csv_parse.rss_delta_bytes >> 10);
  std::printf("bin_load:      %8.2f ms  (rss +%zu KiB, %.1fx vs csv)\n",
              bin_load.best_seconds * 1e3, bin_load.rss_delta_bytes >> 10,
              bin_speedup);
  std::printf("csv_graph:     %8.2f ms  (parse + BuildAmazonLite)\n",
              csv_graph.best_seconds * 1e3);
  std::printf("snapshot_load: %8.2f ms  (rss +%zu KiB, %.1fx vs csv)\n",
              snapshot_load.best_seconds * 1e3,
              snapshot_load.rss_delta_bytes >> 10, speedup);
  std::printf("snapshot_touch:%8.2f ms  (load + full adjacency sweep)\n\n",
              snapshot_touch.best_seconds * 1e3);

  // --- Guarantee 2: the headline floor.
  if (speedup < kSnapshotVsCsvFloor) {
    std::fprintf(stderr,
                 "PERF VIOLATION: snapshot load only %.1fx faster than CSV "
                 "parse (floor %.0fx)\n",
                 speedup, kSnapshotVsCsvFloor);
    ok = false;
  }

  // --- Guarantee 3: mmap, not a heap copy. The fixed slack absorbs
  // allocator bookkeeping at this (small) scale; at the 10M-node band the
  // 2x term dominates.
  const size_t rss_slack = 16u << 20;
  if (snapshot_load.rss_delta_bytes > 0 &&
      snapshot_load.rss_delta_bytes > 2 * snapshot_bytes + rss_slack) {
    std::fprintf(stderr,
                 "RSS VIOLATION: snapshot load grew RSS by %zu B "
                 "(> 2x file size %zu B + slack)\n",
                 snapshot_load.rss_delta_bytes, snapshot_bytes);
    ok = false;
  }

  SetGauge("csv_parse_seconds", csv_parse.best_seconds);
  SetGauge("bin_load_seconds", bin_load.best_seconds);
  SetGauge("csv_graph_seconds", csv_graph.best_seconds);
  SetGauge("snapshot_load_seconds", snapshot_load.best_seconds);
  SetGauge("snapshot_touch_seconds", snapshot_touch.best_seconds);
  SetGauge("snapshot_vs_csv_speedup", speedup);
  SetGauge("bin_vs_csv_speedup", bin_speedup);
  SetGauge("csv_bytes", static_cast<double>(csv_bytes));
  SetGauge("bin_bytes", static_cast<double>(bin_bytes));
  SetGauge("snapshot_bytes", static_cast<double>(snapshot_bytes));
  SetGauge("csv_parse_rss_bytes",
           static_cast<double>(csv_parse.rss_delta_bytes));
  SetGauge("bin_load_rss_bytes",
           static_cast<double>(bin_load.rss_delta_bytes));
  SetGauge("snapshot_load_rss_bytes",
           static_cast<double>(snapshot_load.rss_delta_bytes));
  SetGauge("peak_rss_bytes",
           static_cast<double>(ReadProcStatusBytes("VmHWM:")));
  SetGauge("nodes", static_cast<double>(built.NumNodes()));
  SetGauge("edges", static_cast<double>(built.NumEdges()));

  bench::WriteBenchMetrics("graph_io");
  std::filesystem::remove_all(work, ec);
  if (!ok) return 1;
  std::printf("graph I/O guarantees hold (snapshot %.1fx over CSV, floor "
              "%.0fx)\n",
              speedup, kSnapshotVsCsvFloor);
  return 0;
}
