// Reproduces paper Figure 5: Remove-mode success rates restricted to the
// scenarios the brute-force oracle can solve ("cases when a solution can be
// found, given the current data structure").
//
// Paper-reported shape (§6.3): remove_ex performs closest to brute force,
// remove_Powerset exceeds 90%, and remove_ex_direct drops ~33% relative to
// remove_ex — demonstrating that the CHECK step is necessary.

#include <cstdio>

#include "common.h"
#include "eval/report.h"

int main() {
  using namespace emigre;
  auto experiment = bench::GetOrRunPaperExperiment();
  experiment.status().CheckOK();

  bench::PrintBenchHeader(
      "Figure 5 — Remove-mode success relative to brute force (paper §6.3)",
      experiment->config);

  std::vector<std::string> remove_names;
  for (const auto& m : eval::RemoveMethods()) remove_names.push_back(m.name);

  // The paper identifies solvable cases "by the success of the brute force
  // algorithm", whose runtime there is unbounded (~900 s/scenario). Our
  // brute force runs under a budget, so the solvable set is widened to
  // every scenario some verified Remove-mode method solved — each is a
  // constructive proof of solvability the unbounded oracle would find.
  auto solvable =
      eval::ProvablySolvableScenarios(experiment->result, remove_names);
  auto brute_only =
      eval::OracleSolvableScenarios(experiment->result, "remove_brute");
  std::printf("Provably solvable scenarios: %zu of %zu (budgeted brute "
              "force alone proves %zu)\n\n",
              solvable.size(), experiment->num_scenarios,
              brute_only.size());
  if (solvable.empty()) {
    std::printf("No solvable scenario at this scale; raise "
                "EMIGRE_BENCH_SCALE.\n");
    bench::WriteBenchMetrics("fig5_relative_success");
    return 0;
  }

  auto aggregates = eval::AggregateOnScenarios(experiment->result,
                                               remove_names, solvable);
  // Success on the provably-solvable set IS the relative-to-oracle number
  // (the unbounded oracle solves 100% of it by construction); the budgeted
  // remove_brute row shows how far the budget cap pushes it below that.
  std::printf("%s\n",
              eval::FormatFigure5(aggregates, "(unbounded oracle = 100%)")
                  .c_str());

  double ex = 0.0;
  double direct = 0.0;
  for (const auto& a : aggregates) {
    if (a.method == "remove_ex") ex = a.success_rate;
    if (a.method == "remove_ex_direct") direct = a.success_rate;
  }
  std::printf("Shape check vs paper:\n");
  std::printf("  remove_ex %.1f%% vs remove_ex_direct %.1f%% — drop of "
              "%.1f%% (paper: ~33%% drop; CHECK step is necessary: %s)\n",
              ex, direct, ex - direct,
              ex >= direct ? "HOLDS" : "DOES NOT HOLD");
  bench::WriteBenchMetrics("fig5_relative_success");
  return 0;
}
