// Reproduces paper Figure 7 (§6.4): the "popular item" failure case — a
// Why-Not item for which no Remove-mode explanation can exist because the
// recommended item's score is carried by *other users'* actions, outside
// the privacy-preserving action vocabulary.
//
// Demonstrates: (1) the brute-force oracle confirms no pure-removal
// explanation exists, (2) the meta-explainer diagnoses the popular-item
// cause, (3) the Add mode — creating a stronger network around the Why-Not
// item — still succeeds, exactly the paper's argument for it.

#include <cstdio>

#include "common.h"
#include "explain/emigre.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "graph/hin_graph.h"
#include "recsys/recommender.h"

int main() {
  using namespace emigre;
  bench::BenchConfig config = bench::MakeBenchConfig();
  bench::PrintBenchHeader(
      "Figure 7 — Popular-item impossibility case (paper §6.4)", config);

  graph::HinGraph g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto rated = g.RegisterEdgeType("rated");

  graph::NodeId paul = g.AddNode(user_type, "Paul");
  graph::NodeId bestseller = g.AddNode(item_type, "Bestseller");
  graph::NodeId niche = g.AddNode(item_type, "Niche gem");
  graph::NodeId bridge = g.AddNode(item_type, "Bridge book");
  g.AddBidirectional(paul, bridge, rated).CheckOK();
  g.AddBidirectional(bridge, bestseller, rated).CheckOK();
  g.AddBidirectional(bridge, niche, rated).CheckOK();
  const int kFans = 12;
  for (int i = 0; i < kFans; ++i) {
    graph::NodeId fan = g.AddNode(user_type);
    g.AddBidirectional(fan, bestseller, rated).CheckOK();
  }
  // A small community around the niche item: Add mode can recruit these
  // co-rated neighbors, Remove mode cannot touch them.
  graph::NodeId nia = g.AddNode(user_type, "Nia");
  graph::NodeId noa = g.AddNode(user_type, "Noa");
  graph::NodeId niche2 = g.AddNode(item_type, "Niche companion I");
  graph::NodeId niche3 = g.AddNode(item_type, "Niche companion II");
  g.AddBidirectional(nia, niche2, rated).CheckOK();
  g.AddBidirectional(nia, niche, rated).CheckOK();
  g.AddBidirectional(noa, niche3, rated).CheckOK();
  g.AddBidirectional(noa, niche, rated).CheckOK();

  explain::EmigreOptions opts;
  opts.rec.item_type = item_type;
  opts.allowed_edge_types = {rated};
  opts.add_edge_type = rated;

  explain::Emigre engine(g, opts);
  auto ranking = engine.CurrentRanking(paul);
  std::printf("Paul rated only '%s'; %d other users rated '%s'.\n",
              g.DisplayName(bridge).c_str(), kFans,
              g.DisplayName(bestseller).c_str());
  std::printf("Paul's ranking: ");
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("%s%s (%.4f)", i ? ", " : "",
                g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }
  std::printf("\nWhy-Not question: \"Why not %s?\"\n\n",
              g.DisplayName(niche).c_str());

  explain::WhyNotQuestion q{paul, niche};
  auto brute = engine.Explain(q, explain::Mode::kRemove,
                              explain::Heuristic::kBruteForce);
  brute.status().CheckOK();
  std::printf("[Remove, brute force oracle] found=%s — %s\n",
              brute->found ? "yes" : "no",
              brute->found
                  ? "unexpected!"
                  : "no subset of Paul's actions promotes the niche item");

  auto space = explain::BuildRemoveSearchSpace(
      g, paul, ranking.Top(), niche, opts);
  space.status().CheckOK();
  explain::MetaExplanation meta =
      explain::DiagnoseFailure(g, space.value(), brute.value(), opts);
  std::printf("[Meta-explanation] %s: %s\n\n",
              std::string(FailureReasonName(meta.reason)).c_str(),
              meta.message.c_str());

  auto add = engine.Explain(q, explain::Mode::kAdd,
                            explain::Heuristic::kIncremental);
  add.status().CheckOK();
  if (add->found) {
    std::printf("[Add mode] succeeds where Remove cannot: perform");
    for (const auto& e : add->edges) {
      std::printf(" (Paul, %s)", g.DisplayName(e.dst).c_str());
    }
    std::printf(" and '%s' becomes the recommendation.\n",
                g.DisplayName(add->new_rec).c_str());
  } else {
    std::printf("[Add mode] also failed (%s).\n",
                std::string(FailureReasonName(add->failure)).c_str());
  }
  std::printf("\nPaper shape: Remove mode impossible on popular items; Add "
              "mode \"allows for creating a stronger network around the "
              "Why-Not item\" (§6.3): %s\n",
              !brute->found && add->found ? "HOLDS" : "DOES NOT HOLD");
  bench::WriteBenchMetrics("fig7_popular_item");
  return 0;
}
