// Reproduces paper Figure 4: "Explanation success rate per method".
//
// Paper-reported values (Amazon dataset, §6.3): add_ex ≈ 75% (best),
// Add mode clearly above Remove mode, and remove-mode methods low overall
// because most scenarios have no pure-removal solution (popular items).
//
// Expected shape here (synthetic substitute, see DESIGN.md §2):
//   * every Add-mode method outperforms its Remove-mode counterpart,
//   * the Exhaustive Comparison is the strongest verified strategy among
//     the subset-pruned searches,
//   * remove_ex_direct trails remove_ex (unverified false positives).

#include <cstdio>

#include "common.h"
#include "eval/report.h"

int main() {
  using namespace emigre;
  auto experiment = bench::GetOrRunPaperExperiment();
  experiment.status().CheckOK();

  bench::PrintBenchHeader(
      "Figure 4 — Explanation success rate per method (paper §6.3)",
      experiment->config);

  auto aggregates =
      eval::Aggregate(experiment->result, experiment->method_names);
  std::printf("%s\n", eval::FormatFigure4(aggregates).c_str());
  std::printf("%s\n",
              eval::FormatFailureBreakdown(experiment->result,
                                           experiment->method_names)
                  .c_str());

  double add_avg = 0.0;
  double remove_avg = 0.0;
  int add_n = 0;
  int remove_n = 0;
  for (const auto& a : aggregates) {
    if (a.method.rfind("add_", 0) == 0) {
      add_avg += a.success_rate;
      ++add_n;
    } else if (a.method != "remove_brute") {
      remove_avg += a.success_rate;
      ++remove_n;
    }
  }
  if (add_n > 0) add_avg /= add_n;
  if (remove_n > 0) remove_avg /= remove_n;
  std::printf("Shape check vs paper:\n");
  std::printf("  add-mode mean success    %.1f%%\n", add_avg);
  std::printf("  remove-mode mean success %.1f%%  (paper: Add >> Remove: %s)\n",
              remove_avg, add_avg > remove_avg ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  paper reference: add_ex ~75%% best; remove modes low "
              "because most scenarios lack a pure-removal solution.\n");
  bench::WriteBenchMetrics("fig4_success_rate");
  return 0;
}
