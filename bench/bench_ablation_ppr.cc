// PPR engine micro-benchmarks (google-benchmark): the substrate ablation
// behind EMiGRe's design choices (DESIGN.md "Ablations").
//
//   * Power iteration cost grows with graph size (it touches every edge per
//     iteration) — this is what every TEST invocation pays.
//   * Forward/Reverse Local Push cost is governed by ε, not graph size
//     (locality) — this is why the search-space phase is cheap.
//   * The dynamic updater repairs a forward-push state after an edge flip
//     far cheaper than recomputing from scratch.

#include <benchmark/benchmark.h>

#include "common.h"
#include "data/amazon_lite.h"
#include "data/synthetic_amazon.h"
#include "ppr/dynamic.h"
#include "ppr/forward_push.h"
#include "ppr/power_iteration.h"
#include "ppr/reverse_push.h"

namespace {

using namespace emigre;

data::AmazonLiteGraph MakeGraph(size_t num_items) {
  data::SyntheticAmazonOptions gen;
  gen.num_users = 60;
  gen.num_items = num_items;
  gen.num_categories = 12;
  data::AmazonLiteOptions lite;
  lite.sample_users = 10;
  lite.neighborhood_hops = 0;  // keep the whole graph: size is the variable
  auto ds = data::GenerateSyntheticAmazon(gen);
  ds.status().CheckOK();
  auto built = data::BuildAmazonLite(ds.value(), lite);
  built.status().CheckOK();
  return std::move(built).value();
}

graph::NodeId FirstUser(const data::AmazonLiteGraph& lite) {
  return lite.eval_users.empty() ? 0 : lite.eval_users.front();
}

void BM_PowerIteration(benchmark::State& state) {
  data::AmazonLiteGraph lite = MakeGraph(static_cast<size_t>(state.range(0)));
  ppr::PprOptions opts;
  graph::NodeId seed = FirstUser(lite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppr::PowerIterationPpr(lite.graph, seed, opts));
  }
  state.SetLabel(std::to_string(lite.graph.NumEdges()) + " edges");
}
BENCHMARK(BM_PowerIteration)->Arg(200)->Arg(600)->Arg(1800);

void BM_ForwardPush(benchmark::State& state) {
  data::AmazonLiteGraph lite = MakeGraph(600);
  ppr::PprOptions opts;
  opts.epsilon = 1.0 / static_cast<double>(state.range(0));
  graph::NodeId seed = FirstUser(lite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppr::ForwardPush(lite.graph, seed, opts));
  }
  state.SetLabel("eps=1/" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ForwardPush)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_ReversePush(benchmark::State& state) {
  data::AmazonLiteGraph lite = MakeGraph(600);
  ppr::PprOptions opts;
  opts.epsilon = 1.0 / static_cast<double>(state.range(0));
  // Reverse push from an item node (as the Add-mode search space does).
  graph::NodeId target = 0;
  for (graph::NodeId n = 0; n < lite.graph.NumNodes(); ++n) {
    if (lite.graph.NodeType(n) == lite.item_type) {
      target = n;
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppr::ReversePush(lite.graph, target, opts));
  }
  state.SetLabel("eps=1/" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ReversePush)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_DynamicUpdateVsRecompute(benchmark::State& state) {
  const bool recompute = state.range(0) == 1;
  data::AmazonLiteGraph lite = MakeGraph(600);
  graph::HinGraph& g = lite.graph;
  ppr::PprOptions opts;
  opts.epsilon = 1e-8;
  graph::NodeId user = FirstUser(lite);
  graph::NodeId item = 0;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.NodeType(n) == lite.item_type && !g.HasEdge(user, n)) {
      item = n;
      break;
    }
  }
  ppr::DynamicForwardPush<graph::HinGraph> dyn(g, user, opts);
  bool present = false;
  for (auto _ : state) {
    if (recompute) {
      if (!present) {
        g.AddEdge(user, item, lite.rated_type, 1.0).CheckOK();
      } else {
        g.RemoveEdge(user, item, lite.rated_type).CheckOK();
      }
      present = !present;
      benchmark::DoNotOptimize(ppr::ForwardPush(g, user, opts));
    } else {
      dyn.BeforeOutEdgeChange(user);
      if (!present) {
        g.AddEdge(user, item, lite.rated_type, 1.0).CheckOK();
      } else {
        g.RemoveEdge(user, item, lite.rated_type).CheckOK();
      }
      present = !present;
      dyn.AfterOutEdgeChange(user);
      benchmark::DoNotOptimize(dyn.Estimates());
    }
  }
  state.SetLabel(recompute ? "recompute-from-scratch" : "dynamic-repair");
}
BENCHMARK(BM_DynamicUpdateVsRecompute)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emigre::bench::WriteBenchMetrics("ablation_ppr");
  return 0;
}
