// TEST-implementation ablation: exact recommender re-run per candidate vs
// the dynamic-push tester (fast_tester.h), the optimization the paper
// anticipates in §5.3 ("EMiGRe ... can benefit from optimisation on
// graph-update computation results").
//
// Expected shape: identical (or near-identical) success rates — the fast
// tester is ε-accurate — at a substantially lower per-scenario runtime,
// because each TEST costs two localized residual repairs instead of a full
// power iteration.

#include <cstdio>

#include "common.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace emigre;
  bench::BenchConfig config = bench::MakeBenchConfig();
  config.lite.sample_users = config.scale == 0 ? 4 : 10;
  config.max_per_user = 2;
  config.top_k = 5;

  bench::PrintBenchHeader(
      "Ablation — exact vs dynamic-push TEST implementation", config);

  auto lite = bench::BuildBenchGraph(config);
  lite.status().CheckOK();

  std::vector<eval::MethodSpec> methods = {
      {"add_Incremental", explain::Mode::kAdd,
       explain::Heuristic::kIncremental},
      {"remove_Incremental", explain::Mode::kRemove,
       explain::Heuristic::kIncremental},
      {"remove_Powerset", explain::Mode::kRemove,
       explain::Heuristic::kPowerset},
  };
  std::vector<std::string> names;
  for (const auto& m : methods) names.push_back(m.name);

  TextTable table({"tester", "method", "success", "avg time (all)"});
  table.SetAlign(2, Align::kRight);
  table.SetAlign(3, Align::kRight);

  eval::RunnerOptions run_opts;
  run_opts.num_threads = 0;

  for (explain::TesterKind kind :
       {explain::TesterKind::kExact, explain::TesterKind::kDynamicPush}) {
    explain::EmigreOptions opts = bench::MakeEmigreOptions(config, *lite);
    opts.tester = kind;
    auto scenarios = eval::GenerateScenarios(
        lite->graph, lite->eval_users, opts, config.top_k,
        config.max_per_user);
    scenarios.status().CheckOK();
    auto result = eval::RunExperiment(lite->graph, scenarios.value(),
                                      methods, opts, run_opts);
    result.status().CheckOK();
    auto aggs = eval::Aggregate(result.value(), names);
    const char* label =
        kind == explain::TesterKind::kExact ? "exact" : "dynamic-push";
    for (const auto& a : aggs) {
      table.AddRow({label, a.method,
                    FormatDouble(a.success_rate, 1) + "%",
                    FormatDuration(a.avg_time_all)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Note: the runner re-verifies every returned explanation with "
              "the exact recommender, so 'success' counts only fast-tester "
              "results that hold exactly.\n");
  bench::WriteBenchMetrics("ablation_tester");
  return 0;
}
