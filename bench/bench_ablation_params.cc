// Parameter ablations for the design choices DESIGN.md calls out:
//
//   * teleportation probability α — the paper fixes α = 0.15 (§6.1); we
//     sweep it to show how it trades success rate between modes (larger α
//     concentrates score near the user, shrinking every action's reach);
//   * the Powerset/Exhaustive subset-node cap — the guard on the 2^|H|
//     worst case (§5.3); too small a cap forfeits solutions.

#include <cstdio>
#include <vector>

#include "common.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace emigre;
  bench::BenchConfig config = bench::MakeBenchConfig();
  // This ablation re-runs the experiment per parameter value; shrink it.
  config.lite.sample_users = config.scale == 0 ? 4 : 8;
  config.max_per_user = 2;
  config.top_k = 5;
  config.method_deadline_seconds =
      config.scale == 0 ? 0.2 : config.method_deadline_seconds;

  bench::PrintBenchHeader(
      "Ablations — teleportation α and subset-node cap", config);

  auto lite = bench::BuildBenchGraph(config);
  lite.status().CheckOK();
  eval::RunnerOptions run_opts;
  run_opts.num_threads = 0;

  // --- α sweep over the two Incremental methods. -----------------------------
  {
    TextTable table({"alpha", "add_Incremental success",
                     "remove_Incremental success"});
    table.SetAlign(1, Align::kRight);
    table.SetAlign(2, Align::kRight);
    std::vector<eval::MethodSpec> methods = {
        {"add_Incremental", explain::Mode::kAdd,
         explain::Heuristic::kIncremental},
        {"remove_Incremental", explain::Mode::kRemove,
         explain::Heuristic::kIncremental},
    };
    for (double alpha : {0.05, 0.15, 0.3, 0.5}) {
      explain::EmigreOptions opts = bench::MakeEmigreOptions(config, *lite);
      opts.rec.ppr.alpha = alpha;
      auto scenarios = eval::GenerateScenarios(
          lite->graph, lite->eval_users, opts, config.top_k,
          config.max_per_user);
      scenarios.status().CheckOK();
      auto result = eval::RunExperiment(lite->graph, scenarios.value(),
                                        methods, opts, run_opts);
      result.status().CheckOK();
      auto aggs = eval::Aggregate(result.value(),
                                  {"add_Incremental", "remove_Incremental"});
      table.AddRow({FormatDouble(alpha, 2),
                    FormatDouble(aggs[0].success_rate, 1) + "%",
                    FormatDouble(aggs[1].success_rate, 1) + "%"});
    }
    std::printf("alpha sweep (paper fixes alpha = 0.15):\n%s\n",
                table.ToString().c_str());
  }

  // --- Subset-node cap sweep for remove_Powerset. ----------------------------
  {
    TextTable table({"max_subset_nodes", "remove_Powerset success",
                     "avg time"});
    table.SetAlign(1, Align::kRight);
    table.SetAlign(2, Align::kRight);
    std::vector<eval::MethodSpec> methods = {
        {"remove_Powerset", explain::Mode::kRemove,
         explain::Heuristic::kPowerset},
    };
    for (size_t cap : {size_t{2}, size_t{4}, size_t{8}, size_t{18}}) {
      explain::EmigreOptions opts = bench::MakeEmigreOptions(config, *lite);
      opts.max_subset_nodes = cap;
      auto scenarios = eval::GenerateScenarios(
          lite->graph, lite->eval_users, opts, config.top_k,
          config.max_per_user);
      scenarios.status().CheckOK();
      auto result = eval::RunExperiment(lite->graph, scenarios.value(),
                                        methods, opts, run_opts);
      result.status().CheckOK();
      auto aggs = eval::Aggregate(result.value(), {"remove_Powerset"});
      table.AddRow({StrFormat("%zu", cap),
                    FormatDouble(aggs[0].success_rate, 1) + "%",
                    FormatDuration(aggs[0].avg_time_all)});
    }
    std::printf("subset-node cap sweep (guards the 2^|H| worst case, "
                "paper §5.3):\n%s", table.ToString().c_str());
  }
  bench::WriteBenchMetrics("ablation_params");
  return 0;
}
