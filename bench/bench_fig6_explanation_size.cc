// Reproduces paper Figure 6: "Average explanation size per method".
//
// Paper-reported shape (§6.3): sizes are small overall; in Remove mode the
// Exhaustive Comparison and Powerset track the brute-force minimum; the
// Incremental heuristic produces markedly larger explanations (it greedily
// accumulates); in Add mode sizes are close to a single added edge.

#include <cstdio>

#include "common.h"
#include "eval/report.h"

int main() {
  using namespace emigre;
  auto experiment = bench::GetOrRunPaperExperiment();
  experiment.status().CheckOK();

  bench::PrintBenchHeader(
      "Figure 6 — Average explanation size per method (paper §6.3)",
      experiment->config);

  auto aggregates =
      eval::Aggregate(experiment->result, experiment->method_names);
  std::printf("%s\n", eval::FormatFigure6(aggregates).c_str());

  double inc = 0.0;
  double powerset = 0.0;
  double brute = 0.0;
  bool have = true;
  for (const auto& a : aggregates) {
    if (a.correct == 0) continue;
    if (a.method == "remove_Incremental") inc = a.avg_size;
    if (a.method == "remove_Powerset") powerset = a.avg_size;
    if (a.method == "remove_brute") brute = a.avg_size;
  }
  have = inc > 0 && powerset > 0 && brute > 0;
  std::printf("Shape check vs paper:\n");
  if (have) {
    std::printf("  remove: brute %.2f <= Powerset %.2f <= Incremental %.2f "
                "(%s)\n", brute, powerset, inc,
                brute <= powerset + 1e-9 && powerset <= inc + 1e-9
                    ? "HOLDS"
                    : "PARTIAL");
  } else {
    std::printf("  not enough successful remove-mode scenarios at this "
                "scale for the ordering check.\n");
  }
  std::printf("  paper reference: brute force is the size lower bound; "
              "Incremental is the outlier; Add-mode sizes ~1 edge.\n");
  bench::WriteBenchMetrics("fig6_explanation_size");
  return 0;
}
