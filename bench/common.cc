#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace emigre::bench {

namespace {

int ReadScale() {
  const char* env = std::getenv("EMIGRE_BENCH_SCALE");
  if (env == nullptr) return 1;
  int scale = std::atoi(env);
  if (scale < 0) scale = 0;
  if (scale > 2) scale = 2;
  return scale;
}

/// FNV-1a over the parameters that shape the cached experiment.
uint64_t ConfigFingerprint(const BenchConfig& c) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(c.scale));
  mix(c.gen.seed);
  mix(c.gen.num_users);
  mix(c.gen.num_items);
  mix(c.gen.num_categories);
  mix(c.lite.sample_users);
  mix(c.top_k);
  mix(c.max_per_user);
  mix(static_cast<uint64_t>(c.method_deadline_seconds * 1e3));
  mix(static_cast<uint64_t>(c.oracle_deadline_seconds * 1e3));
  mix(static_cast<uint64_t>(c.epsilon * 1e12));
  return h;
}

}  // namespace

BenchConfig MakeBenchConfig() {
  BenchConfig c;
  c.scale = ReadScale();
  switch (c.scale) {
    case 0:
      c.gen.num_users = 40;
      c.gen.num_items = 300;
      c.gen.num_categories = 8;
      c.lite.sample_users = 6;
      c.top_k = 5;
      c.max_per_user = 2;
      c.method_deadline_seconds = 0.3;
      c.oracle_deadline_seconds = 1.5;
      break;
    case 2:
      // The paper's design: 100 sampled users, every position 2..10 of the
      // top-10 list as the Why-Not item.
      c.gen.num_users = 120;
      c.gen.num_items = 2000;
      c.gen.num_categories = 32;
      c.lite.sample_users = 100;
      c.top_k = 10;
      c.max_per_user = 9;
      c.method_deadline_seconds = 5.0;
      c.oracle_deadline_seconds = 30.0;
      break;
    case 1:
    default:
      c.gen.num_users = 100;
      c.gen.num_items = 900;
      c.gen.num_categories = 16;
      c.lite.sample_users = 15;
      c.top_k = 10;
      c.max_per_user = 3;
      c.method_deadline_seconds = 1.0;
      c.oracle_deadline_seconds = 8.0;
      break;
  }
  return c;
}

explain::EmigreOptions MakeEmigreOptions(const BenchConfig& config,
                                         const data::AmazonLiteGraph& lite) {
  explain::EmigreOptions opts;
  opts.rec.item_type = lite.item_type;
  // The paper's T_e: user–item edges only (both rated and reviewed), for
  // privacy (§6.2).
  opts.allowed_edge_types = {lite.rated_type, lite.reviewed_type};
  opts.add_edge_type = lite.rated_type;
  opts.rec.ppr.epsilon = config.epsilon;
  opts.deadline_seconds = config.method_deadline_seconds;
  return opts;
}

Result<data::AmazonLiteGraph> BuildBenchGraph(const BenchConfig& config) {
  EMIGRE_ASSIGN_OR_RETURN(data::Dataset dataset,
                          data::GenerateSyntheticAmazon(config.gen));
  return data::BuildAmazonLite(dataset, config.lite);
}

Result<BenchExperiment> GetOrRunPaperExperiment() {
  BenchExperiment experiment;
  experiment.config = MakeBenchConfig();
  for (const eval::MethodSpec& m : eval::PaperMethods()) {
    experiment.method_names.push_back(m.name);
  }

  const std::string cache_path = StrFormat(
      "/tmp/emigre_bench_records_%d_%016llx.csv", experiment.config.scale,
      static_cast<unsigned long long>(ConfigFingerprint(experiment.config)));

  bool fresh = std::getenv("EMIGRE_BENCH_FRESH") != nullptr;
  if (!fresh) {
    std::ifstream probe(cache_path);
    if (probe.good()) {
      Result<eval::ExperimentResult> cached =
          eval::LoadRecordsCsv(cache_path);
      if (cached.ok() && !cached->records.empty()) {
        experiment.result = std::move(cached).value();
        experiment.num_scenarios = experiment.result.records.size() /
                                   experiment.method_names.size();
        std::fprintf(stderr, "[bench] loaded cached experiment from %s\n",
                     cache_path.c_str());
        return experiment;
      }
    }
  }

  WallTimer timer;
  EMIGRE_ASSIGN_OR_RETURN(data::AmazonLiteGraph lite,
                          BuildBenchGraph(experiment.config));
  explain::EmigreOptions opts =
      MakeEmigreOptions(experiment.config, lite);
  EMIGRE_ASSIGN_OR_RETURN(
      std::vector<eval::Scenario> scenarios,
      eval::GenerateScenarios(lite.graph, lite.eval_users, opts,
                              experiment.config.top_k,
                              experiment.config.max_per_user));
  experiment.num_scenarios = scenarios.size();
  std::fprintf(stderr,
               "[bench] graph: %zu nodes, %zu edges; %zu scenarios; "
               "running 8 methods...\n",
               lite.graph.NumNodes(), lite.graph.NumEdges(),
               scenarios.size());

  // Heuristic methods under the per-method budget...
  std::vector<eval::MethodSpec> heuristics;
  std::vector<eval::MethodSpec> oracle;
  for (const eval::MethodSpec& m : eval::PaperMethods()) {
    if (m.heuristic == explain::Heuristic::kBruteForce) {
      oracle.push_back(m);
    } else {
      heuristics.push_back(m);
    }
  }
  eval::RunnerOptions run_opts;
  run_opts.num_threads = 0;  // all cores
  run_opts.progress_every = scenarios.size() > 20 ? 10 : 0;
  EMIGRE_ASSIGN_OR_RETURN(
      eval::ExperimentResult heuristic_result,
      eval::RunExperiment(lite.graph, scenarios, heuristics, opts,
                          run_opts));

  // ... and the oracle under its own, much larger budget.
  explain::EmigreOptions oracle_opts = opts;
  oracle_opts.deadline_seconds =
      experiment.config.oracle_deadline_seconds;
  EMIGRE_ASSIGN_OR_RETURN(
      eval::ExperimentResult oracle_result,
      eval::RunExperiment(lite.graph, scenarios, oracle, oracle_opts,
                          run_opts));

  experiment.result.records = std::move(heuristic_result.records);
  experiment.result.records.insert(experiment.result.records.end(),
                                   oracle_result.records.begin(),
                                   oracle_result.records.end());
  std::fprintf(stderr, "[bench] experiment took %.1fs; caching to %s\n",
               timer.ElapsedSeconds(), cache_path.c_str());
  Status st = eval::WriteRecordsCsv(experiment.result, cache_path);
  if (!st.ok()) {
    std::fprintf(stderr, "[bench] cache write failed: %s\n",
                 st.ToString().c_str());
  }
  return experiment;
}

void WriteBenchMetrics(const std::string& bench_name) {
  const char* dir = std::getenv("EMIGRE_BENCH_METRICS_DIR");
  std::string path = StrFormat("%s%sBENCH_%s.json", dir != nullptr ? dir : "",
                               dir != nullptr ? "/" : "",
                               bench_name.c_str());
  obs::BenchDoc doc;
  doc.bench = bench_name;
  doc.scale = ReadScale();
  doc.metrics = obs::Registry::Global().Snapshot();
  doc.trace = obs::TraceSnapshot();
  Status st = obs::WriteBenchJson(path, doc);
  if (!st.ok()) {
    std::fprintf(stderr, "[bench] metrics write failed: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "[bench] metrics -> %s\n", path.c_str());
}

void PrintBenchHeader(const std::string& title, const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(EMIGRE_BENCH_SCALE=%d; see DESIGN.md for the experiment "
              "index)\n", config.scale);
  std::printf("==============================================================\n\n");
}

}  // namespace emigre::bench
