// Reproduces the paper's running example of §5.2.2 (Tables 1, 2 and 3):
// the Exhaustive Comparison's contribution matrix, the per-target threshold
// vector, and the combination matrix after threshold subtraction, on a
// book-store graph in the spirit of Figure 1 — Paul asks "Why not Harry
// Potter?" in Remove mode.
//
// The paper's exact node numbering depends on its withdrawn dataset; what
// reproduces is the *structure*: items ranked worse than the Why-Not item
// get non-positive thresholds, helpful action combinations have all-positive
// rows after subtraction, and the smallest all-positive combination that
// passes TEST is the explanation.

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "explain/emigre.h"
#include "explain/internal.h"
#include "explain/search_space.h"
#include "graph/hin_graph.h"
#include "ppr/reverse_push.h"
#include "recsys/recommender.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace emigre;
using graph::HinGraph;
using graph::NodeId;

struct Store {
  HinGraph g;
  graph::NodeTypeId item_type;
  graph::EdgeTypeId rated;
  NodeId paul = 0;
  NodeId harry_potter = 0;
};

Store BuildStore() {
  Store s;
  HinGraph& g = s.g;
  auto user_type = g.RegisterNodeType("user");
  s.item_type = g.RegisterNodeType("item");
  auto category_type = g.RegisterNodeType("category");
  s.rated = g.RegisterEdgeType("rated");
  auto follows = g.RegisterEdgeType("follows");
  auto belongs = g.RegisterEdgeType("belongs-to");

  s.paul = g.AddNode(user_type, "Paul");
  NodeId alice = g.AddNode(user_type, "Alice");
  NodeId bob = g.AddNode(user_type, "Bob");
  NodeId carol = g.AddNode(user_type, "Carol");
  s.harry_potter = g.AddNode(s.item_type, "Harry Potter");
  NodeId lotr = g.AddNode(s.item_type, "LotR");
  NodeId python = g.AddNode(s.item_type, "Python");
  NodeId c_lang = g.AddNode(s.item_type, "C");
  NodeId candide = g.AddNode(s.item_type, "Candide");
  NodeId alchemist = g.AddNode(s.item_type, "Alchemist");
  NodeId hobbit = g.AddNode(s.item_type, "Hobbit");
  NodeId fantasy = g.AddNode(category_type, "Fantasy");
  NodeId programming = g.AddNode(category_type, "Programming");
  NodeId classics = g.AddNode(category_type, "Classics");

  auto rate = [&](NodeId u, NodeId i) {
    g.AddBidirectional(u, i, s.rated).CheckOK();
  };
  auto cat = [&](NodeId i, NodeId c) {
    g.AddBidirectional(i, c, belongs).CheckOK();
  };
  cat(s.harry_potter, fantasy);
  cat(lotr, fantasy);
  cat(hobbit, fantasy);
  cat(python, programming);
  cat(c_lang, programming);
  cat(candide, classics);
  cat(alchemist, classics);
  rate(alice, s.harry_potter);
  rate(alice, lotr);
  rate(alice, hobbit);
  rate(alice, candide);
  rate(bob, python);
  rate(bob, c_lang);
  rate(bob, alchemist);
  rate(carol, s.harry_potter);
  rate(carol, hobbit);
  rate(s.paul, candide);
  rate(s.paul, c_lang);
  s.g.AddEdge(s.paul, alice, follows).CheckOK();
  s.g.AddEdge(s.paul, bob, follows).CheckOK();
  return s;
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::MakeBenchConfig();
  bench::PrintBenchHeader(
      "Tables 1–3 — Exhaustive Comparison worked example (paper §5.2.2)",
      config);

  Store store = BuildStore();
  const HinGraph& g = store.g;

  explain::EmigreOptions opts;
  opts.rec.item_type = store.item_type;
  opts.allowed_edge_types = {store.rated};
  opts.add_edge_type = store.rated;
  opts.rec.ppr.epsilon = 1e-9;

  explain::Emigre engine(g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(store.paul);
  NodeId rec = ranking.Top();
  NodeId wni = store.harry_potter;
  std::printf("User: Paul; rec = %s; Why-Not item = %s; mode = Remove\n",
              g.DisplayName(rec).c_str(), g.DisplayName(wni).c_str());
  std::printf("Recommendation list T:");
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf(" %s", g.DisplayName(ranking.at(i).item).c_str());
  }
  std::printf("\n\n");

  auto space_result =
      explain::BuildRemoveSearchSpace(g, store.paul, rec, wni, opts);
  space_result.status().CheckOK();
  const explain::SearchSpace& space = space_result.value();

  // Targets: the recommendation list minus the Why-Not item.
  std::vector<NodeId> targets;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking.at(i).item != wni) targets.push_back(ranking.at(i).item);
  }
  std::vector<std::vector<double>> ppr_to_t(targets.size());
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    ppr_to_t[ti] =
        ppr::ReversePush(g, targets[ti], opts.rec.ppr).estimate;
  }

  // --- Table 1: initial contribution matrix. --------------------------------
  std::vector<std::string> headers = {"action \\ target"};
  for (NodeId t : targets) headers.push_back(g.DisplayName(t));
  TextTable table1(headers);
  std::vector<std::vector<double>> c(space.actions.size(),
                                     std::vector<double>(targets.size()));
  for (size_t j = 0; j < space.actions.size(); ++j) {
    const auto& action = space.actions[j];
    double w = g.EdgeWeight(action.edge.src, action.edge.dst,
                            action.edge.type);
    std::vector<std::string> row = {g.DisplayName(action.edge.dst)};
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      c[j][ti] = w * (ppr_to_t[ti][action.edge.dst] -
                      space.ppr_to_wni[action.edge.dst]);
      row.push_back(FormatDouble(c[j][ti], 4));
    }
    table1.AddRow(row);
  }
  std::printf("Table 1 — Initial Contribution Matrix:\n%s\n",
              table1.ToString().c_str());

  // --- Table 2: threshold vector (Eq. 7). ------------------------------------
  std::vector<double> threshold(targets.size(), 0.0);
  for (const graph::Edge& e : g.OutEdges(store.paul)) {
    if (e.node == store.paul || !opts.IsAllowedEdgeType(e.type)) continue;
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      threshold[ti] +=
          e.weight * (ppr_to_t[ti][e.node] - space.ppr_to_wni[e.node]);
    }
  }
  TextTable table2(headers);
  std::vector<std::string> thr_row = {"Threshold(t)"};
  for (double v : threshold) thr_row.push_back(FormatDouble(v, 4));
  table2.AddRow(thr_row);
  std::printf("Table 2 — Threshold vector:\n%s\n", table2.ToString().c_str());
  std::printf("(items ranked worse than the Why-Not item carry non-positive "
              "thresholds, as the paper observes)\n\n");

  // --- Table 3: combinations after threshold subtraction. --------------------
  TextTable table3(headers);
  std::vector<std::vector<size_t>> candidates;
  for (size_t size = 1; size <= space.actions.size(); ++size) {
    explain::internal::ForEachCombination(
        space.actions.size(), size, [&](const std::vector<size_t>& idx) {
          std::string label = "(";
          for (size_t k = 0; k < idx.size(); ++k) {
            label += (k ? ", " : "") +
                     g.DisplayName(space.actions[idx[k]].edge.dst);
          }
          label += ")";
          std::vector<std::string> row = {label};
          bool all_positive = true;
          for (size_t ti = 0; ti < targets.size(); ++ti) {
            double sum = 0.0;
            for (size_t j : idx) sum += c[j][ti];
            double margin = sum - threshold[ti];
            row.push_back(FormatDouble(margin, 4));
            // Same tolerance as the engine: zero margins (exact ties) are
            // kept and adjudicated by TEST.
            if (margin < -opts.exhaustive_margin_slack) all_positive = false;
          }
          if (all_positive) {
            row[0] += " *";
            candidates.push_back(idx);
          }
          table3.AddRow(row);
          return true;
        });
  }
  std::printf("Table 3 — Combination matrix after threshold subtraction "
              "(* = candidate: every margin non-negative within slack):\n%s\n",
              table3.ToString().c_str());

  // --- The TEST phase on the candidates. --------------------------------------
  auto explanation = engine.Explain(explain::WhyNotQuestion{store.paul, wni},
                                    explain::Mode::kRemove,
                                    explain::Heuristic::kExhaustive);
  explanation.status().CheckOK();
  if (explanation->found) {
    std::printf("After the TEST phase, A* = {");
    for (size_t i = 0; i < explanation->edges.size(); ++i) {
      std::printf("%s(Paul, %s)", i ? ", " : "",
                  g.DisplayName(explanation->edges[i].dst).c_str());
    }
    std::printf("} — removing it makes %s the recommendation.\n",
                g.DisplayName(explanation->new_rec).c_str());
  } else {
    std::printf("No candidate passed the TEST phase (%s).\n",
                std::string(FailureReasonName(explanation->failure)).c_str());
  }
  bench::WriteBenchMetrics("running_example");
  return 0;
}
