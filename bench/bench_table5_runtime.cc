// Reproduces paper Table 5: average runtime per method, (a) overall,
// (b) when an explanation is found, (c) when none is found.
//
// Absolute numbers differ from the paper's (Python on a Xeon X5670 vs this
// C++ build on a scaled-down synthetic graph); the orderings are what must
// hold: Incremental fastest in both modes; Powerset slower; the Exhaustive
// Comparison the slowest Add-mode method by far; ex_direct faster than ex
// (early termination); brute force slowest of the Remove family; searches
// that fail ("not found") cost more than ones that succeed for the
// exhaustive strategies.

#include <cstdio>

#include "common.h"
#include "eval/report.h"

int main() {
  using namespace emigre;
  auto experiment = bench::GetOrRunPaperExperiment();
  experiment.status().CheckOK();

  bench::PrintBenchHeader(
      "Table 5 — Average runtime per method (paper §6.3)",
      experiment->config);

  auto aggregates =
      eval::Aggregate(experiment->result, experiment->method_names);
  std::printf("%s\n", eval::FormatTable5(aggregates).c_str());

  auto time_of = [&](const std::string& name) {
    for (const auto& a : aggregates) {
      if (a.method == name) return a.avg_time_all;
    }
    return 0.0;
  };
  auto found_time_of = [&](const std::string& name) {
    for (const auto& a : aggregates) {
      if (a.method == name) return a.avg_time_found;
    }
    return 0.0;
  };
  std::printf("Shape check vs paper:\n");
  // Compare on column (b): our per-attempt budget caps make the
  // "not found" columns reflect the cap interplay rather than the
  // algorithms (the paper runs unbounded searches).
  std::printf("  (b) add_Incremental < add_ex and add_Powerset < add_ex: %s\n",
              found_time_of("add_Incremental") <= found_time_of("add_ex") &&
                      found_time_of("add_Powerset") <= found_time_of("add_ex")
                  ? "HOLDS"
                  : "DOES NOT HOLD");
  std::printf("  remove_Incremental < remove_brute: %s\n",
              time_of("remove_Incremental") < time_of("remove_brute")
                  ? "HOLDS"
                  : "DOES NOT HOLD");
  std::printf("  remove_ex_direct < remove_ex: %s\n",
              time_of("remove_ex_direct") <= time_of("remove_ex")
                  ? "HOLDS"
                  : "DOES NOT HOLD");
  std::printf("  paper reference (seconds, Python): add_Incremental 6.54, "
              "add_Powerset 57.55, add_ex 21618, remove_Incremental 9.07, "
              "remove_Powerset 287.91, remove_ex 173.44, remove_ex_direct "
              "25.14, remove_brute 908.73.\n");
  bench::WriteBenchMetrics("table5_runtime");
  return 0;
}
