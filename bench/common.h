#ifndef EMIGRE_BENCH_COMMON_H_
#define EMIGRE_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "data/amazon_lite.h"
#include "data/synthetic_amazon.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "explain/options.h"
#include "util/result.h"

namespace emigre::bench {

/// \brief Scale-dependent configuration of the paper-reproduction benches.
///
/// `EMIGRE_BENCH_SCALE` selects the workload size:
///   0 — smoke (seconds),
///   1 — default (a few minutes for the full experiment, cached),
///   2 — paper profile (100 users x 9 Why-Not positions; long).
struct BenchConfig {
  int scale = 1;
  data::SyntheticAmazonOptions gen;
  data::AmazonLiteOptions lite;
  size_t top_k = 10;
  size_t max_per_user = 3;
  /// Per-attempt wall-clock budget for the seven EMiGRe methods.
  double method_deadline_seconds = 1.0;
  /// Budget for the brute-force oracle — deliberately much larger, as in
  /// the paper (where remove_brute averages ~900 s vs seconds for the
  /// heuristics), so it remains a meaningful upper bound.
  double oracle_deadline_seconds = 8.0;
  /// Push epsilon used on the scaled-down graphs.
  double epsilon = 1e-7;
};

/// Reads EMIGRE_BENCH_SCALE (default 1) and builds the configuration.
BenchConfig MakeBenchConfig();

/// EmigreOptions wired for an Amazon-Lite graph under this config.
explain::EmigreOptions MakeEmigreOptions(const BenchConfig& config,
                                         const data::AmazonLiteGraph& lite);

/// \brief Everything the figure/table benches need from one experiment run.
struct BenchExperiment {
  BenchConfig config;
  eval::ExperimentResult result;  ///< all eight methods of §6.2
  std::vector<std::string> method_names;
  size_t num_scenarios = 0;
};

/// \brief Runs (or loads from the /tmp cache) the §6.2 experiment:
/// all eight methods over the sampled users' Why-Not scenarios.
///
/// The records are cached as CSV keyed on the configuration, so the four
/// figure/table binaries share one run. Set EMIGRE_BENCH_FRESH=1 to ignore
/// the cache.
[[nodiscard]] Result<BenchExperiment> GetOrRunPaperExperiment();

/// Builds the Amazon-Lite graph for the current config (used by benches
/// that need the graph itself rather than experiment records).
[[nodiscard]]
Result<data::AmazonLiteGraph> BuildBenchGraph(const BenchConfig& config);

/// Prints a standard header naming the bench and the scale.
void PrintBenchHeader(const std::string& title, const BenchConfig& config);

/// Writes the process-wide metrics registry as `BENCH_<name>.json`
/// (emigre.bench.v1 schema, see docs/observability.md) — the
/// perf-trajectory record every bench emits on exit, and the input of the
/// `emigre perfgate` regression gate. Files land in the current directory
/// unless EMIGRE_BENCH_METRICS_DIR overrides it.
void WriteBenchMetrics(const std::string& bench_name);

}  // namespace emigre::bench

#endif  // EMIGRE_BENCH_COMMON_H_
